"""Wire dialects: MQTT-like, HTTP-like, and HAP-like framing.

A codec turns a canonical :class:`~repro.appproto.messages.IoTMessage` into
plaintext bytes (one TLS record) and back.  ``pad_to`` requests an exact
plaintext length so that device profiles reproduce their characteristic
packet sizes on the wire; the codec absorbs its own framing overhead when
honouring it.
"""

from __future__ import annotations

from typing import Protocol

from .messages import (
    COMMAND,
    COMMAND_ACK,
    COMPACT_KINDS,
    CONNACK,
    CONNECT,
    DISCONNECT,
    EVENT,
    EVENT_ACK,
    IoTMessage,
    KEEPALIVE,
    KEEPALIVE_ACK,
    MessageDecodeError,
    decode_body,
    decode_compact,
    encode_body,
    encode_compact,
    is_compact,
)


class WireCodec(Protocol):
    """Dialect interface used by the protocol engines."""

    name: str

    def encode(self, message: IoTMessage, pad_to: int | None = None) -> bytes: ...

    def decode(self, data: bytes) -> IoTMessage: ...


class _CompactControlMixin:
    """Keep-alives and acks travel as compact binary control frames.

    Real stacks do the same — MQTT's PINGREQ is a two-byte packet and
    vendor HTTP channels ping with websocket control frames — and it is
    what makes the tiny constant keep-alive sizes of Table I (SmartThings
    40 B, Ring 48 B) physically possible on the wire.
    """

    def encode_control(self, message: IoTMessage, pad_to: int | None) -> bytes | None:
        if message.kind in COMPACT_KINDS:
            return encode_compact(message, pad_to=pad_to)
        return None

    def decode_control(self, data: bytes) -> IoTMessage | None:
        if is_compact(data):
            return decode_compact(data)
        return None


class MqttCodec(_CompactControlMixin):
    """MQTT 3.1.1-style framing: fixed header byte + varint remaining length.

    EVENT and COMMAND both ride in PUBLISH (direction disambiguates on real
    brokers; here the body's ``kind`` field is authoritative), acks in
    PUBACK, keep-alive in PINGREQ/PINGRESP.
    """

    name = "mqtt"

    _TYPE_OF_KIND = {
        CONNECT: 1,
        CONNACK: 2,
        EVENT: 3,
        COMMAND: 3,
        EVENT_ACK: 4,
        COMMAND_ACK: 4,
        KEEPALIVE: 12,
        KEEPALIVE_ACK: 13,
        DISCONNECT: 14,
    }

    @staticmethod
    def _varint(n: int) -> bytes:
        out = bytearray()
        while True:
            byte = n % 128
            n //= 128
            if n:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                return bytes(out)

    @staticmethod
    def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
        value = 0
        multiplier = 1
        while True:
            if offset >= len(data):
                raise MessageDecodeError("truncated MQTT varint")
            byte = data[offset]
            offset += 1
            value += (byte & 0x7F) * multiplier
            if not byte & 0x80:
                return value, offset
            multiplier *= 128

    def encode(self, message: IoTMessage, pad_to: int | None = None) -> bytes:
        control = self.encode_control(message, pad_to)
        if control is not None:
            return control
        packet_type = self._TYPE_OF_KIND[message.kind]

        def build(body_pad: int | None) -> bytes:
            body = encode_body(message, pad_to=body_pad)
            return bytes([packet_type << 4]) + self._varint(len(body)) + body

        frame = build(None)
        if pad_to is not None and pad_to > len(frame):
            # Converge on the exact frame size (varint may grow by a byte).
            body_pad = pad_to - (len(frame) - len(encode_body(message)))
            for _ in range(3):
                frame = build(body_pad)
                if len(frame) == pad_to:
                    break
                body_pad -= len(frame) - pad_to
        return frame

    def decode(self, data: bytes) -> IoTMessage:
        if not data:
            raise MessageDecodeError("empty MQTT packet")
        control = self.decode_control(data)
        if control is not None:
            return control
        length, offset = self._read_varint(data, 1)
        body = data[offset : offset + length]
        if len(body) != length:
            raise MessageDecodeError("truncated MQTT body")
        message = decode_body(body)
        expected = self._TYPE_OF_KIND[message.kind]
        if data[0] >> 4 != expected:
            raise MessageDecodeError(
                f"MQTT packet type {data[0] >> 4} does not match body kind {message.kind}"
            )
        return message


class HttpCodec(_CompactControlMixin):
    """HTTP/1.1-style framing.

    Requests carry device→server messages (and server→device commands on a
    persistent session, as vendor long-poll protocols do); acknowledgements
    are 200 responses with the ack body.
    """

    name = "http"

    _REQUEST_KINDS = {CONNECT, EVENT, COMMAND, KEEPALIVE, DISCONNECT}
    _PATH_OF_KIND = {
        CONNECT: "/session",
        EVENT: "/event",
        COMMAND: "/command",
        KEEPALIVE: "/ping",
        DISCONNECT: "/bye",
    }

    def _start_line(self, message: IoTMessage) -> str:
        if message.kind in self._REQUEST_KINDS:
            return f"POST {self._PATH_OF_KIND[message.kind]} HTTP/1.1"
        return "HTTP/1.1 200 OK"

    def _encode_padded(self, message: IoTMessage, pad_to: int | None) -> bytes:
        """Frame with an exact total size when ``pad_to`` asks for one.

        Total size is ``base + digits(n) + n`` for a body of ``n`` bytes,
        which skips a value whenever ``n`` crosses a power of ten (999→1000
        grows the frame by two).  Those gap sizes are reached by zero-padding
        the Content-Length value, so every ``pad_to`` at or above the natural
        frame size plus one digit of slack is hit exactly.
        """
        start = self._start_line(message)

        def build(body_pad: int | None, cl_width: int = 0) -> bytes:
            body = encode_body(message, pad_to=body_pad)
            head = f"{start}\r\nContent-Length: {len(body):0{cl_width}d}\r\n\r\n"
            return head.encode() + body

        frame = build(None)
        if pad_to is None or pad_to <= len(frame):
            return frame
        natural_body = len(encode_body(message))
        base = len(frame) - len(str(natural_body)) - natural_body
        # Largest body that still fits, then stretch the length field over
        # whatever gap remains (zero is a no-op for ordinary sizes).
        body_pad = pad_to - base - 1
        while body_pad > natural_body and base + len(str(body_pad)) + body_pad > pad_to:
            body_pad -= 1
        cl_width = pad_to - base - body_pad
        if body_pad < natural_body or cl_width < len(str(body_pad)):
            return frame  # pad_to sits inside the framing overhead; best effort
        return build(body_pad, cl_width)

    def encode(self, message: IoTMessage, pad_to: int | None = None) -> bytes:
        control = self.encode_control(message, pad_to)
        if control is not None:
            return control
        return self._encode_padded(message, pad_to)

    def decode(self, data: bytes) -> IoTMessage:
        control = self.decode_control(data)
        if control is not None:
            return control
        sep = data.find(b"\r\n\r\n")
        if sep < 0:
            raise MessageDecodeError("no HTTP header terminator")
        return decode_body(data[sep + 4 :])


class HapCodec(HttpCodec):
    """HomeKit-Accessory-Protocol-style framing.

    Real HAP sends unsolicited events as ``EVENT/1.0`` messages; everything
    else is HTTP.  The distinguishing *behaviour* — events are never
    acknowledged — lives in the protocol config, not the codec.
    """

    name = "hap"

    def _start_line(self, message: IoTMessage) -> str:
        if message.kind == EVENT:
            return "EVENT/1.0 200 OK"
        return super()._start_line(message)


CODECS: dict[str, WireCodec] = {
    "mqtt": MqttCodec(),
    "http": HttpCodec(),
    "hap": HapCodec(),
}


def codec_by_name(name: str) -> WireCodec:
    try:
        return CODECS[name]
    except KeyError:
        raise ValueError(f"unknown codec: {name!r} (have {sorted(CODECS)})") from None
