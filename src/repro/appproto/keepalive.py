"""Keep-alive policies.

Section IV-B describes the *pattern of keep-alive messages* as one of the
three parameters of a device's timeout behaviour: keep-alives are exchanged
either at a **fixed** period (independent of other traffic — Philips Hue's
120 s) or **on-idle** (postponed by normal messages — SmartThings' 31 s).
The profiler distinguishes the two by triggering a normal message and
watching whether the next keep-alive shifts.
"""

from __future__ import annotations

from dataclasses import dataclass

FIXED = "fixed"
ON_IDLE = "on-idle"


@dataclass(frozen=True)
class KeepAlivePolicy:
    """Period and scheduling strategy of a device's keep-alive messages."""

    period: float
    strategy: str = ON_IDLE

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"keep-alive period must be positive: {self.period}")
        if self.strategy not in (FIXED, ON_IDLE):
            raise ValueError(f"unknown keep-alive strategy: {self.strategy!r}")

    @property
    def resets_on_activity(self) -> bool:
        return self.strategy == ON_IDLE

    def describe(self) -> str:
        return f"{self.period:g}s/{self.strategy}"
