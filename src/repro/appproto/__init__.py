"""Application-layer IoT protocols: messages, dialects, and timeout engines."""

from .base import (
    DeviceProtocolClient,
    PendingCommand,
    ProtocolConfig,
    SentEvent,
    ServerDeviceSession,
)
from .codecs import CODECS, HapCodec, HttpCodec, MqttCodec, WireCodec, codec_by_name
from .keepalive import FIXED, KeepAlivePolicy, ON_IDLE
from .messages import (
    ALL_KINDS,
    COMMAND,
    COMMAND_ACK,
    CONNACK,
    CONNECT,
    DISCONNECT,
    EVENT,
    EVENT_ACK,
    IoTMessage,
    KEEPALIVE,
    KEEPALIVE_ACK,
    MessageDecodeError,
    decode_body,
    encode_body,
)

__all__ = [
    "ALL_KINDS",
    "CODECS",
    "COMMAND",
    "COMMAND_ACK",
    "CONNACK",
    "CONNECT",
    "DISCONNECT",
    "DeviceProtocolClient",
    "EVENT",
    "EVENT_ACK",
    "FIXED",
    "HapCodec",
    "HttpCodec",
    "IoTMessage",
    "KEEPALIVE",
    "KEEPALIVE_ACK",
    "KeepAlivePolicy",
    "MessageDecodeError",
    "MqttCodec",
    "ON_IDLE",
    "PendingCommand",
    "ProtocolConfig",
    "SentEvent",
    "ServerDeviceSession",
    "WireCodec",
    "codec_by_name",
    "decode_body",
    "encode_body",
]
