"""Canonical IoT application messages.

Every dialect (MQTT, HTTP-style, HAP-style) carries the same logical
messages; the codecs in :mod:`repro.appproto.codecs` only change the bytes.
Messages carry a ``device_time`` field — the moment the device generated the
message — because two evaluation behaviours depend on it: Alexa-style silent
discard of stale events (Finding 2) and the Section VII-B timestamp-checking
countermeasure.

Encoding pads to a caller-chosen plaintext size so each device profile
produces its characteristic wire lengths, which is what traffic
fingerprinting keys on.
"""

from __future__ import annotations

import itertools
import json
import struct
from dataclasses import dataclass, field
from typing import Any

# Canonical message kinds.
CONNECT = "connect"
CONNACK = "connack"
EVENT = "event"
EVENT_ACK = "event_ack"
COMMAND = "command"
COMMAND_ACK = "command_ack"
KEEPALIVE = "keepalive"
KEEPALIVE_ACK = "keepalive_ack"
DISCONNECT = "disconnect"

ALL_KINDS = (
    CONNECT,
    CONNACK,
    EVENT,
    EVENT_ACK,
    COMMAND,
    COMMAND_ACK,
    KEEPALIVE,
    KEEPALIVE_ACK,
    DISCONNECT,
)

_msg_ids = itertools.count(1)


class MessageDecodeError(ValueError):
    """Raised when bytes cannot be decoded into an IoT message."""


@dataclass(frozen=True)
class IoTMessage:
    """One logical application-layer message."""

    kind: str
    name: str = ""
    data: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    device_time: float = 0.0
    device_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown message kind: {self.kind!r}")

    def ack_kind(self) -> str:
        mapping = {EVENT: EVENT_ACK, COMMAND: COMMAND_ACK, KEEPALIVE: KEEPALIVE_ACK, CONNECT: CONNACK}
        try:
            return mapping[self.kind]
        except KeyError:
            raise ValueError(f"{self.kind} has no acknowledgement kind") from None

    def make_ack(self, data: dict[str, Any] | None = None, device_time: float = 0.0) -> "IoTMessage":
        """Build the acknowledgement answering this message."""
        return IoTMessage(
            kind=self.ack_kind(),
            name=self.name,
            data=data or {},
            msg_id=self.msg_id,  # acks echo the id they answer
            device_time=device_time,
            device_id=self.device_id,
        )


#: Kinds carried as compact fixed binary control frames (real stacks use
#: 2-byte MQTT PINGREQ packets / websocket pings, not JSON, for these).
COMPACT_KINDS = frozenset({KEEPALIVE, KEEPALIVE_ACK, CONNACK, EVENT_ACK, COMMAND_ACK})

_COMPACT_MAGIC = 0xC0
_COMPACT_CODE = {kind: i for i, kind in enumerate(sorted(COMPACT_KINDS))}
_COMPACT_KIND = {i: kind for kind, i in _COMPACT_CODE.items()}


def encode_compact(message: IoTMessage, pad_to: int | None = None) -> bytes:
    """Fixed-layout control frame: magic, kind, msg_id, time, device id."""
    device_id = message.device_id.encode()[:255]
    body = bytes([_COMPACT_MAGIC, _COMPACT_CODE[message.kind]])
    body += message.msg_id.to_bytes(4, "big")
    body += struct.pack("!d", message.device_time)
    body += bytes([len(device_id)]) + device_id
    if pad_to is not None and pad_to > len(body):
        body += b"\x00" * (pad_to - len(body))
    return body


def decode_compact(data: bytes) -> IoTMessage:
    if len(data) < 15 or data[0] != _COMPACT_MAGIC:
        raise MessageDecodeError("not a compact control frame")
    try:
        kind = _COMPACT_KIND[data[1]]
    except KeyError:
        raise MessageDecodeError(f"unknown compact kind code {data[1]}") from None
    msg_id = int.from_bytes(data[2:6], "big")
    (device_time,) = struct.unpack("!d", data[6:14])
    id_len = data[14]
    device_id = data[15 : 15 + id_len].decode(errors="replace")
    return IoTMessage(
        kind=kind, msg_id=msg_id, device_time=device_time, device_id=device_id
    )


def is_compact(data: bytes) -> bool:
    return bool(data) and data[0] == _COMPACT_MAGIC


def encode_body(message: IoTMessage, pad_to: int | None = None) -> bytes:
    """Serialise a message, optionally padding the plaintext to ``pad_to``.

    The pad is appended after a NUL separator so decoding is unambiguous.
    ``pad_to`` smaller than the natural encoding is ignored (the message
    wins), matching how real payload sizes set a floor on packet lengths.
    """
    # Single-letter keys keep the natural encoding small enough to fit the
    # catalogue's smallest observed wire sizes (padding can only grow).
    body = json.dumps(
        {
            "k": message.kind,
            "n": message.name,
            "d": message.data,
            "i": message.msg_id,
            "t": message.device_time,
            "s": message.device_id,
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode()
    if pad_to is not None and pad_to > len(body):
        body = body + b"\x00" + b"p" * (pad_to - len(body) - 1)
    return body


def decode_body(data: bytes) -> IoTMessage:
    core = data.split(b"\x00", 1)[0]
    try:
        obj = json.loads(core.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageDecodeError(f"undecodable message body: {exc}") from exc
    try:
        return IoTMessage(
            kind=obj["k"],
            name=obj.get("n", ""),
            data=obj.get("d", {}),
            msg_id=obj["i"],
            device_time=obj.get("t", 0.0),
            device_id=obj.get("s", ""),
        )
    except (KeyError, ValueError) as exc:
        raise MessageDecodeError(f"bad message fields: {exc}") from exc
