"""Impairment profiles: what a misbehaving network does, as data.

A :class:`FaultProfile` is a frozen bundle of per-frame impairment
probabilities and magnitudes.  Profiles compose — any subset of the knobs
may be non-zero — and are pure data, so they pickle cleanly into
:class:`~repro.parallel.runner.Shard` kwargs and hash into derived seeds.

Loss comes in two flavours, matching how WiFi actually fails:

* **Bernoulli** (``loss``): independent per-frame coin flips — background
  interference;
* **Gilbert-Elliott** (``burst_enter``/``burst_exit``/``burst_loss``): a
  two-state Markov chain whose bad state drops frames in bursts — a
  microwave oven, a neighbour's transfer, a passing body.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

_PROBABILITY_FIELDS = (
    "loss", "burst_enter", "burst_exit", "burst_loss", "duplicate", "reorder", "corrupt",
)


@dataclass(frozen=True)
class FaultProfile:
    """One composable bundle of network impairments.

    All probabilities are per transmitted frame; all delays are seconds of
    simulated time.  ``corrupt_mode`` chooses what a corrupted frame does:
    ``"drop"`` models the Ethernet/WiFi FCS discarding it (so TCP sees it
    as loss and retransmits — the honest default), ``"deliver"`` hands the
    mangled bytes up the stack so the TLS MAC check must catch them (used
    by the invariant regression tests).
    """

    name: str = "custom"
    #: Bernoulli per-frame loss probability.
    loss: float = 0.0
    #: Gilbert-Elliott chain: P(good->bad), P(bad->good), loss in bad state.
    burst_enter: float = 0.0
    burst_exit: float = 1.0
    burst_loss: float = 0.0
    #: Probability a frame is delivered twice (copy a short time later).
    duplicate: float = 0.0
    #: Probability a frame is held back so later frames overtake it, and
    #: the maximum extra holdback applied when it is.
    reorder: float = 0.0
    reorder_window: float = 0.05
    #: Probability one payload byte is flipped in flight.
    corrupt: float = 0.0
    corrupt_mode: str = "drop"
    #: Extra uniform random delay per frame (channel contention).
    jitter: float = 0.0
    #: Per-host clock drift magnitude in parts-per-million: each host's
    #: transmissions skew later by up to ``drift_ppm * 1e-6 * now`` seconds.
    drift_ppm: float = 0.0

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]: {value}")
        for name in ("reorder_window", "jitter", "drift_ppm"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative: {getattr(self, name)}")
        if self.corrupt_mode not in ("drop", "deliver"):
            raise ValueError(f"corrupt_mode must be 'drop' or 'deliver': {self.corrupt_mode!r}")

    @property
    def impaired(self) -> bool:
        """False for the ideal link (every knob at its neutral value)."""
        return any(
            getattr(self, f) > 0
            for f in (*_PROBABILITY_FIELDS, "jitter", "drift_ppm")
            if f != "burst_exit"
        )

    def describe(self) -> str:
        """Compact ``knob=value`` summary of the non-neutral impairments."""
        parts = []
        neutral = {"burst_exit": 1.0, "reorder_window": 0.05, "corrupt_mode": "drop"}
        for f in fields(self):
            if f.name == "name":
                continue
            value = getattr(self, f.name)
            if value != neutral.get(f.name, 0.0 if f.name != "corrupt_mode" else "drop"):
                parts.append(f"{f.name}={value:g}" if isinstance(value, float) else f"{f.name}={value}")
        return f"{self.name}({', '.join(parts) or 'ideal'})"

    @classmethod
    def parse(cls, spec: str) -> "FaultProfile":
        """Build a profile from a named preset or ``knob=value`` pairs.

        ``"lossy"`` resolves from :data:`PROFILES`; ``"loss=0.05,jitter=0.01"``
        builds a custom profile.  A leading preset can be extended:
        ``"lossy,jitter=0.02"``.
        """
        parts = [p.strip() for p in spec.split(",") if p.strip()]
        base = cls(name=spec if parts and "=" not in parts[0] else "custom")
        if parts and "=" not in parts[0]:
            base = get_profile(parts[0])
            parts = parts[1:]
            if parts:
                base = replace(base, name=f"{base.name}+custom")
        overrides: dict[str, object] = {}
        valid = {f.name for f in fields(cls)}
        for part in parts:
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in valid or key == "name":
                raise ValueError(f"unknown fault knob {key!r} in {spec!r}")
            overrides[key] = raw.strip() if key == "corrupt_mode" else float(raw)
        return replace(base, **overrides) if overrides else base


#: Named presets used by the CLI ``--faults`` flag, the robustness sweep,
#: and the CI faults-matrix.  Magnitudes are chosen so every Table III
#: attack still lands (the acceptance bar: success at loss <= 5%).
PROFILES: dict[str, FaultProfile] = {
    "ideal": FaultProfile(name="ideal"),
    "lossy": FaultProfile(name="lossy", loss=0.03),
    "bursty": FaultProfile(
        name="bursty", burst_enter=0.02, burst_exit=0.25, burst_loss=0.6
    ),
    "jittery": FaultProfile(
        name="jittery", jitter=0.015, reorder=0.05, reorder_window=0.03, drift_ppm=50.0
    ),
    "chaotic": FaultProfile(
        name="chaotic",
        loss=0.02,
        burst_enter=0.01,
        burst_exit=0.3,
        burst_loss=0.5,
        duplicate=0.02,
        reorder=0.03,
        jitter=0.01,
        corrupt=0.005,
    ),
}


def get_profile(name: str) -> FaultProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; known: {', '.join(sorted(PROFILES))}"
        ) from None


def resolve_profile(faults: "FaultProfile | str | None") -> FaultProfile | None:
    """Normalise the ``faults=`` argument accepted across the stack."""
    if faults is None or isinstance(faults, FaultProfile):
        return faults
    return FaultProfile.parse(faults)
