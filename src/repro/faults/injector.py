"""Seeded, schedule-deterministic fault injection on the LAN.

The injector sits in :meth:`~repro.simnet.link.Lan.transmit`: for every
eligible frame it turns the one ideal delivery into a *plan* — zero
deliveries (loss), one (possibly delayed or corrupted), or two
(duplication).  Determinism is absolute: the injector owns its own
:class:`random.Random` seeded from ``(seed, profile.name)`` via
:func:`~repro.parallel.seeds.derive_seed`, and it consumes a **fixed
number of draws per frame** regardless of which impairments trigger, so
the RNG stream stays aligned with the event schedule and any run is
replayable bit-for-bit from its seed.

Only frames carrying TCP ride the impaired channel.  The ARP/control
plane models a reliable medium on purpose: the simulator's ARP layer has
no retry logic (real stacks re-request; ours would deadlock), and the
paper's robustness question — does the attack survive a network that
loses, duplicates, and reorders? — lives entirely on the TCP data path.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from random import Random
from typing import TYPE_CHECKING

from ..parallel.seeds import derive_seed
from ..simnet.packet import EthernetFrame, IpPacket
from .profiles import FaultProfile, resolve_profile

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.link import Lan
    from ..simnet.scheduler import Simulator

#: Extra delay of a duplicated frame's second copy: long enough to be a
#: distinct delivery event, short enough to land inside the same exchange.
DUPLICATE_GAP = 0.001

_STAT_KEYS = (
    "frames_seen",
    "frames_passed",
    "dropped_random",
    "dropped_burst",
    "dropped_corrupt",
    "corrupted_delivered",
    "duplicated",
    "reordered",
)


def _drift_factor(mac: str) -> float:
    """Stable per-host drift scale in [0.5, 1.5], derived from the MAC.

    Hash-derived (not RNG-drawn) so a host's drift does not depend on the
    order hosts first transmit, only on its identity.
    """
    digest = hashlib.blake2b(mac.encode(), digest_size=4).digest()
    return 0.5 + int.from_bytes(digest, "big") / 0xFFFFFFFF


def _corrupt_frame(frame: EthernetFrame, u_pos: float) -> EthernetFrame | None:
    """Flip one payload byte; None when the frame carries no payload bytes."""
    packet = frame.payload
    segment = packet.payload
    data = segment.payload
    if not data:
        return None
    pos = min(int(u_pos * len(data)), len(data) - 1)
    mangled = data[:pos] + bytes([data[pos] ^ 0x80]) + data[pos + 1 :]
    return replace(frame, payload=replace(packet, payload=replace(segment, payload=mangled)))


class FaultInjector:
    """Applies one :class:`FaultProfile` to a LAN's transmissions."""

    def __init__(
        self,
        sim: "Simulator",
        profile: FaultProfile | str,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        resolved = resolve_profile(profile)
        assert resolved is not None
        self.profile = resolved
        self.seed = seed
        self.rng = Random(derive_seed(seed, f"faults/{self.profile.name}"))
        self._in_burst = False
        self.stats: dict[str, int] = dict.fromkeys(_STAT_KEYS, 0)

    def attach(self, lan: "Lan") -> "FaultInjector":
        """Install this injector as the LAN's impairment hook.

        An impairing profile also registers as a scheduler quiescence
        blocker for the simulation's lifetime: under impairment any
        keep-alive can spawn retransmissions, so the scheduler must keep
        re-evaluating the event mix per event instead of batch-stepping.
        """
        lan.fault_injector = self
        if self.profile.impaired:
            self.sim.block_quiescence()
        return self

    # ------------------------------------------------------------------ plan

    def eligible(self, frame: EthernetFrame) -> bool:
        """True for frames on the impaired (TCP data) path."""
        packet = frame.payload
        return isinstance(packet, IpPacket) and hasattr(packet.payload, "src_port")

    def plan(
        self, frame: EthernetFrame, base_delay: float
    ) -> list[tuple[float, EthernetFrame]]:
        """Impairment plan for one frame: ``[(delay, frame), ...]``.

        An empty plan means the frame was lost.  Exactly nine uniform
        draws are consumed per eligible frame, whatever happens.
        """
        profile = self.profile
        if not profile.impaired or not self.eligible(frame):
            return [(base_delay, frame)]
        self.stats["frames_seen"] += 1
        rng = self.rng
        (u_trans, u_burst_drop, u_loss, u_corrupt, u_corrupt_byte,
         u_dup, u_reorder, u_reorder_delay, u_jitter) = (rng.random() for _ in range(9))

        delay = base_delay
        if profile.drift_ppm > 0:
            delay += (
                _drift_factor(frame.src_mac) * profile.drift_ppm * 1e-6 * self.sim.now
            )
        if profile.jitter > 0:
            delay += u_jitter * profile.jitter

        # Gilbert-Elliott state advances on every frame, dropped or not.
        if self._in_burst:
            if u_trans < profile.burst_exit:
                self._in_burst = False
        elif u_trans < profile.burst_enter:
            self._in_burst = True

        if u_loss < profile.loss:
            return self._drop("dropped_random")
        if self._in_burst and u_burst_drop < profile.burst_loss:
            return self._drop("dropped_burst")

        if u_corrupt < profile.corrupt:
            mangled = _corrupt_frame(frame, u_corrupt_byte)
            if mangled is not None:
                if profile.corrupt_mode == "drop":
                    # The Ethernet/WiFi FCS catches the damage; from TCP's
                    # point of view a corrupted frame is a lost frame.
                    return self._drop("dropped_corrupt")
                self.stats["corrupted_delivered"] += 1
                self._count("corrupted_delivered")
                frame = mangled

        if u_reorder < profile.reorder:
            # Hold this frame back so frames transmitted after it overtake.
            delay += u_reorder_delay * profile.reorder_window
            self.stats["reordered"] += 1
            self._count("reordered")

        deliveries = [(delay, frame)]
        if u_dup < profile.duplicate:
            deliveries.append((delay + DUPLICATE_GAP, frame))
            self.stats["duplicated"] += 1
            self._count("duplicated")
        self.stats["frames_passed"] += 1
        return deliveries

    # --------------------------------------------------------------- helpers

    def _drop(self, cause: str) -> list[tuple[float, EthernetFrame]]:
        self.stats[cause] += 1
        self._count(cause)
        return []

    def _count(self, cause: str) -> None:
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("faults", "impairments", cause=cause).inc()

    def summary(self) -> str:
        """One-line account for logs and the demo script."""
        active = {k: v for k, v in self.stats.items() if v}
        body = ", ".join(f"{k}={v}" for k, v in active.items()) or "no frames impaired"
        return f"faults[{self.profile.name}]: {body}"
