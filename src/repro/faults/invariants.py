"""Cross-layer safety/liveness invariants for the simulated stack.

The fault injector proves the network *can* misbehave; this module proves
the stack *doesn't*.  An :class:`InvariantSuite` installs itself on the
simulator (``sim.invariants``) and each layer calls a tiny hook at its
commit points — the same pattern as ``sim.obs``: one attribute load and a
``None`` check when the suite is off, so the ideal-path cost is nil.

Checked invariants:

* :data:`INV_TCP_STREAM` — every byte a TCP connection delivers to its
  application is exactly the next byte its peer sent: exactly-once,
  in-order, never invented.  This is the property that makes loss,
  duplication, and reordering invisible to TLS.
* :data:`INV_TLS_INTEGRITY` — no TLS session raises a fatal integrity
  alert (bad record MAC / sequence desync).  Under an honest TCP this
  must hold for every fault profile whose corruption mode is ``drop``.
* :data:`INV_HOLD_ORDER` — the attacker's hold queues release packets in
  capture order per flow; a delayed packet is stale, never shuffled.
* :data:`INV_RULE_PROVENANCE` — an automation rule never fires more
  often for ``(device, event)`` than the device actually emitted that
  event: dropped triggers may delay rules, never invent firings.

Violations carry the simulated time and an actionable message naming the
flow/session/rule at fault.  By default violations accumulate and
:meth:`InvariantSuite.check` raises at the end of a run; ``strict=True``
raises at the exact moment of violation instead (handy under a debugger).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator
    from ..tcp.connection import TcpConnection

INV_TCP_STREAM = "tcp-stream-exactly-once"
INV_TLS_INTEGRITY = "tls-record-integrity"
INV_HOLD_ORDER = "hold-release-order"
INV_RULE_PROVENANCE = "rule-trigger-provenance"

ALL_INVARIANTS = (
    INV_TCP_STREAM,
    INV_TLS_INTEGRITY,
    INV_HOLD_ORDER,
    INV_RULE_PROVENANCE,
)


@dataclass(frozen=True)
class Violation:
    """One observed break of one invariant."""

    invariant: str
    time: float
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.invariant}] t={self.time:.3f}s {self.message}"


class InvariantError(AssertionError):
    """Raised when one or more invariants were violated."""

    def __init__(self, violations: Iterable[Violation]) -> None:
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n  {lines}"
        )


class _StreamState:
    """One direction of one TCP 4-tuple: sent bytes vs. delivered bytes.

    Memory-bounded: the delivered prefix is trimmed away, so the buffer
    only ever holds bytes in flight (sent but not yet delivered).
    """

    __slots__ = ("sent", "base", "delivered")

    def __init__(self) -> None:
        self.sent = bytearray()
        self.base = 0  # stream offset of sent[0]
        self.delivered = 0  # bytes handed to the receiving application


class InvariantSuite:
    """Cross-layer invariant checkers for one simulation.

    Install with :meth:`install` (or pass ``check_invariants=True`` to the
    testbed / scenario runners, which do it for you).
    """

    def __init__(self, sim: "Simulator", strict: bool = False) -> None:
        self.sim = sim
        self.strict = strict
        self.violations: list[Violation] = []
        #: (src_ip, src_port, dst_ip, dst_port) -> _StreamState
        self._streams: dict[tuple[str, int, str, int], _StreamState] = {}
        #: flow label -> simulated timestamp of the last packet released.
        self._last_release_ts: dict[str, float] = {}
        #: (device_id, event_name) -> emission count.
        self._emitted: dict[tuple[str, str], int] = {}
        #: (rule_id, device_id, event_name) -> firing count.
        self._fired: dict[tuple[str, str, str], int] = {}
        self.checks_run = 0

    def install(self) -> "InvariantSuite":
        """Register as ``sim.invariants`` so the layer hooks find us."""
        self.sim.invariants = self
        return self

    # ------------------------------------------------------------ TCP hooks

    def on_tcp_send(self, conn: "TcpConnection", data: bytes) -> None:
        """Record application bytes queued on a connection (sender side)."""
        key = (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        state = self._streams.get(key)
        if state is None:
            state = self._streams[key] = _StreamState()
        state.sent.extend(data)

    def on_tcp_deliver(self, conn: "TcpConnection", data: bytes) -> None:
        """Check bytes handed to the receiving application (receiver side)."""
        self.checks_run += 1
        key = (conn.remote_ip, conn.remote_port, conn.local_ip, conn.local_port)
        state = self._streams.get(key)
        if state is None:
            # Peer never registered a send — bytes out of thin air
            # (e.g. a forged or replayed segment accepted as data).
            self._violate(
                INV_TCP_STREAM,
                f"flow {conn.flow_label()}: delivered {len(data)} bytes on a "
                "stream with no recorded sender — data was invented or "
                "replayed, not sent by the peer",
                flow=conn.flow_label(),
                delivered=len(data),
            )
            return
        start = state.delivered - state.base
        end = start + len(data)
        if start < 0 or end > len(state.sent):
            self._violate(
                INV_TCP_STREAM,
                f"flow {conn.flow_label()}: delivered bytes "
                f"[{state.delivered}, {state.delivered + len(data)}) but the "
                f"peer only sent {state.base + len(state.sent)} bytes — "
                "exactly-once delivery violated (duplicate or invented data)",
                flow=conn.flow_label(),
                delivered_offset=state.delivered,
                sent_total=state.base + len(state.sent),
            )
            return
        expected = bytes(state.sent[start:end])
        if expected != data:
            diff = next(i for i in range(len(data)) if data[i] != expected[i])
            self._violate(
                INV_TCP_STREAM,
                f"flow {conn.flow_label()}: byte {state.delivered + diff} of "
                f"the stream differs from what the peer sent "
                f"(got 0x{data[diff]:02x}, sent 0x{expected[diff]:02x}) — "
                "in-order delivery corrupted (skipped retransmission or "
                "mangled segment accepted)",
                flow=conn.flow_label(),
                offset=state.delivered + diff,
            )
            return
        state.delivered += len(data)
        # Trim the consumed prefix so memory stays bounded by in-flight data.
        consumed = state.delivered - state.base
        if consumed > 0:
            del state.sent[:consumed]
            state.base = state.delivered

    # ------------------------------------------------------------ TLS hooks

    def on_tls_alert(self, session_label: str, description: str) -> None:
        """A TLS session raised a fatal alert — always an integrity break."""
        self.checks_run += 1
        self._violate(
            INV_TLS_INTEGRITY,
            f"TLS session {session_label} raised fatal alert "
            f"{description!r} — a record failed MAC/sequence verification, "
            "so TCP handed TLS bytes the peer never sealed",
            session=session_label,
            alert=description,
        )

    # ------------------------------------------------------- attacker hooks

    def on_hold_release(self, flow_label: str, timestamps: list[float]) -> None:
        """The hijacker is flushing a hold queue for ``flow_label``.

        ``timestamps`` are the capture times of the packets about to be
        released, in release order.
        """
        self.checks_run += 1
        last = self._last_release_ts.get(flow_label, float("-inf"))
        for ts in timestamps:
            if ts < last:
                self._violate(
                    INV_HOLD_ORDER,
                    f"flow {flow_label}: releasing a packet captured at "
                    f"t={ts:.3f}s after one captured at t={last:.3f}s — hold "
                    "release must preserve capture order (phantom delay "
                    "means stale, never shuffled)",
                    flow=flow_label,
                    released_ts=ts,
                    previous_ts=last,
                )
                return
            last = ts
        self._last_release_ts[flow_label] = last

    # ----------------------------------------------------- automation hooks

    def on_event_emitted(self, device_id: str, event_name: str) -> None:
        """A device actually produced ``event_name`` (ground truth)."""
        key = (device_id, event_name)
        self._emitted[key] = self._emitted.get(key, 0) + 1

    def on_rule_fired(self, rule_id: str, device_id: str, event_name: str) -> None:
        """An automation rule fired from a ``(device, event)`` trigger."""
        self.checks_run += 1
        fired_key = (rule_id, device_id, event_name)
        self._fired[fired_key] = self._fired.get(fired_key, 0) + 1
        emitted = self._emitted.get((device_id, event_name), 0)
        if self._fired[fired_key] > emitted:
            self._violate(
                INV_RULE_PROVENANCE,
                f"rule {rule_id!r} fired {self._fired[fired_key]} time(s) on "
                f"{device_id}/{event_name} but the device only emitted it "
                f"{emitted} time(s) — a firing has no emitted trigger "
                "(phantom or duplicated event)",
                rule=rule_id,
                device=device_id,
                event=event_name,
                fired=self._fired[fired_key],
                emitted=emitted,
            )

    # --------------------------------------------------------------- results

    def _violate(self, invariant: str, message: str, **details: Any) -> None:
        violation = Violation(
            invariant=invariant, time=self.sim.now, message=message, details=details
        )
        self.violations.append(violation)
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter(
                "faults", "invariant_violations", invariant=invariant
            ).inc()
        if self.strict:
            raise InvariantError([violation])

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self) -> None:
        """Raise :class:`InvariantError` if any invariant was violated."""
        if self.violations:
            raise InvariantError(self.violations)

    def summary(self) -> str:
        if self.ok:
            return f"invariants: all held ({self.checks_run} checks)"
        return (
            f"invariants: {len(self.violations)} violation(s) over "
            f"{self.checks_run} checks — " + "; ".join(str(v) for v in self.violations)
        )
