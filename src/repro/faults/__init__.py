"""Deterministic fault injection and cross-layer invariant checking.

The paper's core claim — TCP timeout detection is decoupled from TLS data
protection, so held packets survive arbitrarily long without tripping
either layer — is only convincing if the simulated stack stays correct
when the network itself misbehaves.  This package supplies the two halves
of that argument:

* :mod:`repro.faults.injector` — a seeded, schedule-deterministic
  impairment layer on the LAN (loss, burst loss, duplication, reordering,
  corruption, jitter, clock drift), replayable from ``(seed, profile)``;
* :mod:`repro.faults.invariants` — liveness/safety checkers hooked into
  every layer (TCP exactly-once in-order delivery, TLS integrity, ordered
  attacker hold release, automation rule provenance), in the spirit of
  TAPInspector's safety/liveness verification of trigger-action systems.

A run with any fault profile active and the invariant suite silent is the
simulator's proof of honesty: everything the impaired network did was
recovered by TCP, verified by TLS, and never invented an automation firing.
"""

from .injector import FaultInjector
from .invariants import (
    INV_HOLD_ORDER,
    INV_RULE_PROVENANCE,
    INV_TCP_STREAM,
    INV_TLS_INTEGRITY,
    InvariantError,
    InvariantSuite,
    Violation,
)
from .invariants import ALL_INVARIANTS
from .profiles import PROFILES, FaultProfile, get_profile, resolve_profile

__all__ = [
    "ALL_INVARIANTS",
    "FaultInjector",
    "FaultProfile",
    "INV_HOLD_ORDER",
    "INV_RULE_PROVENANCE",
    "INV_TCP_STREAM",
    "INV_TLS_INTEGRITY",
    "InvariantError",
    "InvariantSuite",
    "PROFILES",
    "Violation",
    "get_profile",
    "resolve_profile",
]
