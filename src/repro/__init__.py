"""repro — reproduction of "IoT Phantom-Delay Attacks" (DSN 2022).

The package is layered bottom-up:

* :mod:`repro.simnet` — discrete-event network simulator (LAN, ARP, WAN).
* :mod:`repro.tcp` / :mod:`repro.tls` — transport substrates whose decoupled
  timeout-vs-integrity behaviour is the design flaw the paper exploits.
* :mod:`repro.appproto` — MQTT / HTTP / HAP application protocols with their
  keep-alive and timeout rules.
* :mod:`repro.devices` — 50 parameterised IoT device models.
* :mod:`repro.cloud` + :mod:`repro.automation` — IoT servers and the
  trigger-condition-action automation engine.
* :mod:`repro.core` — the paper's contribution: sniffing, timeout profiling,
  the e-Delay / c-Delay primitives, and the Type-I/II/III attacks.
* :mod:`repro.countermeasures` — the Section VII defences.

Most users start from :class:`repro.testbed.SmartHomeTestbed` (a ready-made
home + cloud + attacker) or from the examples directory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
