"""Central alarm log — the attack's success criterion.

The defining property of a phantom-delay attack is *stealth*: messages are
delayed "without triggering alerts in any layer of the IoT network protocol
stack".  Every layer in the reproduction therefore reports its alarms
(timeouts, disconnections, TLS integrity alerts, device-offline detections)
to an :class:`AlarmLog`, and the evaluation asserts on its contents: an
attack run is stealthy exactly when the alarm log stayed empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .simnet.scheduler import Simulator

# Alarm kinds raised across the stack.
ALARM_TCP_TIMEOUT = "tcp-timeout"
ALARM_TLS_ALERT = "tls-alert"
ALARM_DEVICE_OFFLINE = "device-offline"
ALARM_KEEPALIVE_TIMEOUT = "keepalive-timeout"
ALARM_EVENT_ACK_TIMEOUT = "event-ack-timeout"
ALARM_COMMAND_TIMEOUT = "command-timeout"
ALARM_CONNECT_TIMEOUT = "connect-timeout"
ALARM_SESSION_DROPPED = "session-dropped"


@dataclass(frozen=True)
class Alarm:
    """One raised alert: when, what, where, and free-form detail."""

    ts: float
    kind: str
    source: str
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.ts:10.3f}] {self.kind} @ {self.source}: {self.detail}"


@dataclass
class AlarmLog:
    """Append-only record of every alert raised anywhere in a simulation."""

    sim: "Simulator"
    alarms: list[Alarm] = field(default_factory=list)

    def raise_alarm(self, kind: str, source: str, detail: str = "") -> Alarm:
        alarm = Alarm(ts=self.sim.now, kind=kind, source=source, detail=detail)
        self.alarms.append(alarm)
        obs = self.sim.obs
        if obs.enabled:
            # Stealth accounting: a stealthy attack leaves this counter at 0.
            obs.registry.counter("alarms", "raised", kind=kind).inc()
            obs.tracer.event("alarms", f"alarm:{kind}", source=source, detail=detail)
        return alarm

    def of_kind(self, kind: str) -> list[Alarm]:
        return [a for a in self.alarms if a.kind == kind]

    def from_source(self, source: str) -> list[Alarm]:
        return [a for a in self.alarms if a.source == source]

    def since(self, ts: float) -> list[Alarm]:
        return [a for a in self.alarms if a.ts >= ts]

    def kinds(self) -> set[str]:
        return {a.kind for a in self.alarms}

    @property
    def silent(self) -> bool:
        """True when no alarm of any kind has been raised."""
        return not self.alarms

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.alarms)
        return len(self.of_kind(kind))

    def summary(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for alarm in self.alarms:
            out[alarm.kind] = out.get(alarm.kind, 0) + 1
        return out

    def extend_summary(self, kinds: Iterable[str]) -> dict[str, int]:
        """Summary including zero counts for the given kinds."""
        out = {kind: 0 for kind in kinds}
        out.update(self.summary())
        return out
