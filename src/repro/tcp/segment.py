"""TCP segment format.

Segments carry real 32-bit sequence/acknowledgement numbers and genuine
payload bytes.  The hijacker (:mod:`repro.core.hijacker`) reads and forges
*headers only* — exactly what an on-path attacker can do against a
TLS-protected session, since TCP headers are cleartext while payloads are
TLS records it cannot alter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

TCP_HEADER_BYTES = 20
SEQ_MODULUS = 2**32

#: Default maximum segment size used by the stack.
DEFAULT_MSS = 1460


def seq_add(seq: int, delta: int) -> int:
    return (seq + delta) % SEQ_MODULUS


def seq_lt(a: int, b: int) -> bool:
    """Modular 'a strictly before b' comparison (RFC 793 style)."""
    return ((b - a) % SEQ_MODULUS) != 0 and ((b - a) % SEQ_MODULUS) < SEQ_MODULUS // 2


def seq_leq(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


@dataclass(frozen=True)
class TcpSegment:
    """One TCP segment; flags are a frozenset of {SYN, ACK, FIN, RST, PSH}."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: frozenset[str] = field(default_factory=frozenset)
    payload: bytes = b""
    window: int = 65535

    def __post_init__(self) -> None:
        bad = self.flags - {"SYN", "ACK", "FIN", "RST", "PSH"}
        if bad:
            raise ValueError(f"unknown TCP flags: {bad}")

    # -- convenience predicates -------------------------------------------

    @property
    def syn(self) -> bool:
        return "SYN" in self.flags

    @property
    def ack_flag(self) -> bool:
        return "ACK" in self.flags

    @property
    def fin(self) -> bool:
        return "FIN" in self.flags

    @property
    def rst(self) -> bool:
        return "RST" in self.flags

    @property
    def payload_size(self) -> int:
        return len(self.payload)

    @property
    def seq_space(self) -> int:
        """Sequence-number space consumed (payload plus SYN/FIN)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    def byte_size(self) -> int:
        return TCP_HEADER_BYTES + len(self.payload)

    def reversed_flow(self) -> tuple[int, int]:
        return (self.dst_port, self.src_port)

    def describe(self) -> str:
        flag_str = ",".join(sorted(self.flags)) or "-"
        return (
            f"TCP {self.src_port}->{self.dst_port} [{flag_str}] "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)}"
        )


def make_segment(
    src_port: int,
    dst_port: int,
    seq: int,
    ack: int,
    *flags: str,
    payload: bytes = b"",
) -> TcpSegment:
    """Terse constructor used heavily by tests and the hijacker."""
    return TcpSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=frozenset(flags),
        payload=payload,
    )
