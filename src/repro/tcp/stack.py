"""Host-bound TCP stack: listeners, demux, and ephemeral ports.

The stack is the glue between :class:`~repro.simnet.host.Host` (IP in/out)
and :class:`~repro.tcp.connection.TcpConnection` (per-flow state machine).
Every IoT device, hub, cloud server, and local server in the reproduction
talks through one of these.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..simnet.host import Host
from ..simnet.packet import IpPacket
from .connection import TcpCallbacks, TcpConfig, TcpConnection
from .segment import TcpSegment

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Callback invoked with a brand-new server-side connection so the
#: application can install its handlers before the handshake completes.
AcceptHandler = Callable[[TcpConnection], None]

EPHEMERAL_BASE = 49152


class TcpStack:
    """One host's TCP: connection table plus listening sockets."""

    def __init__(self, host: Host, default_config: TcpConfig | None = None) -> None:
        self.host = host
        self.sim: "Simulator" = host.sim
        self.default_config = default_config or TcpConfig()
        self._connections: dict[tuple[int, str, int], TcpConnection] = {}
        self._listeners: dict[int, tuple[AcceptHandler, TcpConfig]] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        host.ip_handler = self._on_ip_packet
        self.segments_dropped = 0

    # ----------------------------------------------------------- open/listen

    def listen(
        self,
        port: int,
        on_accept: AcceptHandler,
        config: TcpConfig | None = None,
    ) -> None:
        if port in self._listeners:
            raise ValueError(f"port {port} already listening on {self.host.hostname}")
        self._listeners[port] = (on_accept, config or self.default_config)

    def stop_listening(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        remote_ip: str,
        remote_port: int,
        callbacks: TcpCallbacks | None = None,
        config: TcpConfig | None = None,
        local_port: int | None = None,
    ) -> TcpConnection:
        """Open an active connection (SYN goes out immediately)."""
        port = local_port if local_port is not None else self._allocate_port()
        conn = TcpConnection(
            stack=self,
            local_port=port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            config=config or self.default_config,
            callbacks=callbacks,
        )
        key = conn.key
        if key in self._connections:
            raise ValueError(f"connection already exists: {key}")
        self._connections[key] = conn
        conn.open_active()
        return conn

    def _allocate_port(self) -> int:
        for _ in range(65536 - EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = EPHEMERAL_BASE
            if not any(k[0] == port for k in self._connections) and port not in self._listeners:
                return port
        raise RuntimeError("ephemeral port space exhausted")

    # -------------------------------------------------------------- wire I/O

    def send_segment(self, conn: TcpConnection, segment: TcpSegment) -> None:
        self.host.send_ip(
            IpPacket(src_ip=self.host.ip, dst_ip=conn.remote_ip, payload=segment)
        )

    def _on_ip_packet(self, packet: IpPacket) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return
        key = (segment.dst_port, packet.src_ip, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.on_segment(segment)
            return
        if segment.syn and not segment.ack_flag:
            listener = self._listeners.get(segment.dst_port)
            if listener is not None:
                self._accept(packet, segment, *listener)
                return
        self.segments_dropped += 1
        # A real stack answers strays with RST; the reproduction stays quiet
        # to keep traces readable, matching embedded stacks that drop.

    def _accept(
        self,
        packet: IpPacket,
        syn: TcpSegment,
        on_accept: AcceptHandler,
        config: TcpConfig,
    ) -> None:
        conn = TcpConnection(
            stack=self,
            local_port=syn.dst_port,
            remote_ip=packet.src_ip,
            remote_port=syn.src_port,
            config=config,
        )
        self._connections[conn.key] = conn
        # Let the application install callbacks before any data can arrive.
        on_accept(conn)
        conn.open_passive_syn(syn)

    # ------------------------------------------------------------- lifecycle

    def forget(self, conn: TcpConnection) -> None:
        self._connections.pop(conn.key, None)

    def connections(self) -> list[TcpConnection]:
        return list(self._connections.values())

    def connection_count(self) -> int:
        return len(self._connections)
