"""TCP connection state machine.

This implements the parts of TCP the paper's analysis rests on
(Section IV-A1):

* a **retransmission timer** with exponential backoff — if every attempt
  fails the connection is torn down and the upper layer is notified of the
  timeout;
* a **keep-alive timer** — after an idle period, probe segments are sent and
  unanswered probes kill the connection;
* cleartext, forgeable **acknowledgements** — the crucial weakness: an ACK
  is valid if its numbers are right, with no cryptographic binding to the
  payload it acknowledges.

The attack works because a middle-box that immediately ACKs data and answers
probes silences both timers while delivering nothing.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from .segment import DEFAULT_MSS, TcpSegment, seq_add, seq_leq, seq_lt

if TYPE_CHECKING:  # pragma: no cover
    from .stack import TcpStack

# Connection states (RFC 793 subset).
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
CLOSING = "CLOSING"
TIME_WAIT = "TIME_WAIT"

# Close / failure reasons surfaced to the application layer.
REASON_LOCAL_CLOSE = "local-close"
REASON_REMOTE_CLOSE = "remote-close"
REASON_RESET = "reset"
REASON_RETRANSMIT_TIMEOUT = "retransmission-timeout"
REASON_KEEPALIVE_TIMEOUT = "keepalive-timeout"


@dataclass
class TcpConfig:
    """Tunable timer behaviour of one endpoint's TCP."""

    mss: int = DEFAULT_MSS
    rto_initial: float = 1.0
    rto_max: float = 60.0
    rto_backoff: float = 2.0
    max_retransmits: int = 6
    keepalive_enabled: bool = True
    #: Idle time before the first keep-alive probe.  Real stacks default to
    #: 7200 s; embedded IoT stacks configure far shorter values.
    keepalive_idle: float = 60.0
    keepalive_probe_interval: float = 10.0
    keepalive_probe_count: int = 5
    time_wait: float = 2.0
    #: Pure duplicate ACKs that trigger a fast retransmit (RFC 5681).
    dup_ack_threshold: int = 3
    #: Out-of-order reassembly buffer cap, in segments.  Embedded stacks
    #: have small fixed buffers; overflow discards the segment, which the
    #: peer's retransmission timer repairs.
    ooo_limit: int = 64


@dataclass
class TcpCallbacks:
    """Application-layer hooks; all optional."""

    on_connected: Callable[["TcpConnection"], None] | None = None
    on_data: Callable[["TcpConnection", bytes], None] | None = None
    on_closed: Callable[["TcpConnection", str], None] | None = None


@dataclass
class _Unacked:
    segment: TcpSegment
    first_sent: float
    retransmits: int = 0


class TcpConnection:
    """One endpoint of a TCP connection."""

    def __init__(
        self,
        stack: "TcpStack",
        local_port: int,
        remote_ip: str,
        remote_port: int,
        config: TcpConfig | None = None,
        callbacks: TcpCallbacks | None = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config or TcpConfig()
        self.callbacks = callbacks or TcpCallbacks()

        self.state = CLOSED
        self.iss = self.sim.rng.randrange(0, 2**32)
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.rcv_nxt = 0

        self._send_queue: list[bytes] = []
        self._unacked: list[_Unacked] = []
        self._ooo: dict[int, TcpSegment] = {}
        self._dup_acks = 0
        self._retx_timer = None
        self._keepalive_timer = None
        # Hot timer labels, interned once: retransmit and keep-alive timers
        # are re-armed per segment, and building a fresh f-string each time
        # dominated the arm cost (and defeated the scheduler's label
        # interning, which only dedupes identical objects cheaply).
        self._retx_label = sys.intern(f"tcp-retx:{local_port}")
        self._ka_label = sys.intern(f"tcp-ka:{local_port}")
        self._probes_outstanding = 0
        self._fin_sent = False
        self._fin_queued = False
        self._closed_notified = False
        self._last_unsolicited_ack = float("-inf")

        # Observability counters used by tests and the evaluation harness.
        self.stats: dict[str, int] = {
            "segments_sent": 0,
            "segments_received": 0,
            "bytes_sent": 0,
            "bytes_delivered": 0,
            "retransmissions": 0,
            "fast_retransmits": 0,
            "keepalive_probes": 0,
            "duplicate_acks_sent": 0,
            "ooo_buffered": 0,
            "ooo_discarded": 0,
        }

    # ------------------------------------------------------------- identity

    @property
    def local_ip(self) -> str:
        return self.stack.host.ip

    @property
    def key(self) -> tuple[int, str, int]:
        return (self.local_port, self.remote_ip, self.remote_port)

    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    def flow_label(self) -> str:
        """Canonical flow identifier, matching capture/hijacker reporting."""
        from ..simnet.trace import FlowKey

        return FlowKey.of(
            self.local_ip, self.local_port, self.remote_ip, self.remote_port
        ).label()

    @property
    def is_open(self) -> bool:
        return self.state not in (CLOSED, TIME_WAIT, LISTEN)

    # ----------------------------------------------------------- public API

    def open_active(self) -> None:
        """Client side: send SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"cannot connect from state {self.state}")
        self.state = SYN_SENT
        self._transmit(self._make_segment("SYN", payload=b""), reliable=True)

    def open_passive_syn(self, syn: TcpSegment) -> None:
        """Server side: a listener saw a SYN for us."""
        self.rcv_nxt = seq_add(syn.seq, 1)
        self.state = SYN_RCVD
        self._transmit(self._make_segment("SYN", "ACK"), reliable=True)

    def send(self, data: bytes) -> None:
        """Queue application bytes for in-order reliable delivery."""
        if not data:
            return
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise RuntimeError(f"cannot send in state {self.state}")
        if self._fin_queued or self._fin_sent:
            raise RuntimeError("cannot send after close()")
        view = memoryview(bytes(data))
        segments = 0
        for off in range(0, len(view), self.config.mss):
            chunk = bytes(view[off : off + self.config.mss])
            self._transmit(
                self._make_segment("ACK", "PSH", payload=chunk), reliable=True
            )
            segments += 1
        self.stats["bytes_sent"] += len(view)
        inv = self.sim.invariants
        if inv is not None:
            inv.on_tcp_send(self, bytes(view))
        obs = self.sim.obs
        if obs.enabled and obs.tracer.current is not None:
            # Child of whatever message span is ambient (TLS seal path).
            obs.tracer.event(
                "tcp", "send", flow=self.flow_label(), bytes=len(view), segments=segments
            )

    def close(self) -> None:
        """Orderly close: send FIN once in-flight data is acknowledged."""
        if self.state in (CLOSED, TIME_WAIT, LAST_ACK, FIN_WAIT_1, FIN_WAIT_2, CLOSING):
            return
        self._fin_queued = True
        self._maybe_send_fin()

    def abort(self, reason: str = REASON_LOCAL_CLOSE) -> None:
        """Hard teardown: emit RST and drop all state."""
        if self.state == CLOSED:
            return
        rst = self._make_segment("RST", "ACK")
        self._emit(rst)
        self._enter_closed(reason)

    # --------------------------------------------------------- segment path

    def on_segment(self, segment: TcpSegment) -> None:
        """Entry point from the stack demux."""
        if self.state == CLOSED:
            return
        self.stats["segments_received"] += 1

        if segment.rst:
            if self.state != SYN_SENT or segment.ack_flag:
                self._enter_closed(REASON_RESET, notify_peer=False)
            return

        if self.state == SYN_SENT:
            self._on_segment_syn_sent(segment)
            return
        if self.state == SYN_RCVD and segment.ack_flag and not segment.syn:
            if segment.ack == seq_add(self.iss, 1):
                self._handle_ack(segment.ack)
                self.state = ESTABLISHED
                self._arm_keepalive()
                self._notify_connected()
                # fall through: the handshake ACK may carry data

        # Any traffic from the peer proves the path is alive.
        self._probes_outstanding = 0
        if self.state in (ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2, CLOSE_WAIT, CLOSING, LAST_ACK):
            if segment.ack_flag:
                pure_ack = not (segment.payload or segment.syn or segment.fin)
                self._handle_ack(segment.ack, pure_ack=pure_ack)
            if segment.payload or segment.fin:
                self._handle_receive(segment)
            elif not segment.syn and segment.seq != self.rcv_nxt:
                # Payload-less segment outside the expected sequence — a
                # keep-alive probe (seq one below the window), or a probe
                # from a sender whose data is in flight elsewhere.  RFC 793
                # requires acknowledging unacceptable segments; throttle so
                # two desynchronised peers cannot enter a dup-ACK storm.
                if self.sim.now - self._last_unsolicited_ack >= 0.5:
                    self._last_unsolicited_ack = self.sim.now
                    self._send_ack(duplicate=True)
            self._arm_keepalive()

    def _on_segment_syn_sent(self, segment: TcpSegment) -> None:
        if segment.syn and segment.ack_flag and segment.ack == seq_add(self.iss, 1):
            self.rcv_nxt = seq_add(segment.seq, 1)
            self._handle_ack(segment.ack)
            self.state = ESTABLISHED
            self._send_ack()
            self._arm_keepalive()
            self._notify_connected()

    # ------------------------------------------------------------ ACK logic

    def _handle_ack(self, ack: int, pure_ack: bool = False) -> None:
        if not (seq_lt(self.snd_una, ack) and seq_leq(ack, self.snd_nxt)):
            # A pure ACK that re-asserts snd_una while data is in flight is
            # a duplicate ACK: the receiver got something out of order.
            # Forged hold ACKs *advance* snd_una, so they never count here.
            if pure_ack and ack == self.snd_una and self._unacked:
                self._dup_acks += 1
                if self._dup_acks >= self.config.dup_ack_threshold:
                    self._fast_retransmit()
            return
        self._dup_acks = 0
        self.snd_una = ack
        still_unacked: list[_Unacked] = []
        for entry in self._unacked:
            end = seq_add(entry.segment.seq, entry.segment.seq_space)
            if not seq_leq(end, ack):
                still_unacked.append(entry)
        self._unacked = still_unacked
        self._cancel_retx_timer()
        if self._unacked:
            self._arm_retx_timer(self.config.rto_initial)
        if self._fin_sent and ack == self.snd_nxt:
            self._on_fin_acked()
        self._maybe_send_fin()

    def _on_fin_acked(self) -> None:
        if self.state == FIN_WAIT_1:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING:
            self._enter_time_wait()
        elif self.state == LAST_ACK:
            self._enter_closed(REASON_LOCAL_CLOSE, notify_peer=False)

    # -------------------------------------------------------- receive logic

    def _handle_receive(self, segment: TcpSegment) -> None:
        if seq_lt(segment.seq, self.rcv_nxt) and not (
            segment.seq == seq_add(self.rcv_nxt, -1) and not segment.payload
        ):
            # Old data (or a retransmission we already have): re-ACK it.
            self._send_ack(duplicate=True)
            return
        if segment.seq == seq_add(self.rcv_nxt, -1) and not segment.payload:
            # Keep-alive probe: seq one below the expected next byte.
            self._send_ack(duplicate=True)
            return
        if segment.seq != self.rcv_nxt:
            # Out of order: buffer and re-assert our expectation.  The
            # buffer is bounded like an embedded stack's; on overflow the
            # segment is discarded and repaired by peer retransmission.
            if segment.seq in self._ooo or len(self._ooo) < self.config.ooo_limit:
                self._ooo[segment.seq] = segment
                self.stats["ooo_buffered"] += 1
            else:
                self.stats["ooo_discarded"] += 1
            self._send_ack(duplicate=True)
            return
        self._accept_in_order(segment)
        # Drain any now-contiguous out-of-order segments.
        while self.rcv_nxt in self._ooo:
            self._accept_in_order(self._ooo.pop(self.rcv_nxt))
        self._send_ack()

    def _accept_in_order(self, segment: TcpSegment) -> None:
        if segment.payload:
            self.rcv_nxt = seq_add(self.rcv_nxt, len(segment.payload))
            self.stats["bytes_delivered"] += len(segment.payload)
            inv = self.sim.invariants
            if inv is not None:
                inv.on_tcp_deliver(self, segment.payload)
            if self.callbacks.on_data is not None:
                self.callbacks.on_data(self, segment.payload)
        if segment.fin:
            self.rcv_nxt = seq_add(self.rcv_nxt, 1)
            self._on_fin_received()

    def _on_fin_received(self) -> None:
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
            self._notify_closed(REASON_REMOTE_CLOSE)
            # Mirror the close: most IoT stacks immediately FIN back.
            self.close()
        elif self.state == FIN_WAIT_1:
            self.state = CLOSING
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()

    # ----------------------------------------------------------- FIN sending

    def _maybe_send_fin(self) -> None:
        if not self._fin_queued or self._fin_sent or self._unacked:
            return
        self._fin_sent = True
        self._fin_queued = False
        if self.state in (ESTABLISHED, SYN_RCVD):
            self.state = FIN_WAIT_1
        elif self.state == CLOSE_WAIT:
            self.state = LAST_ACK
        self._transmit(self._make_segment("FIN", "ACK"), reliable=True)

    # ------------------------------------------------------------- transmit

    def _make_segment(self, *flags: str, payload: bytes = b"") -> TcpSegment:
        return TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=frozenset(flags),
            payload=payload,
        )

    def _transmit(self, segment: TcpSegment, reliable: bool) -> None:
        if reliable:
            self.snd_nxt = seq_add(self.snd_nxt, segment.seq_space)
            self._unacked.append(_Unacked(segment, first_sent=self.sim.now))
            if self._retx_timer is None or not self._retx_timer.active:
                self._arm_retx_timer(self.config.rto_initial)
        self._emit(segment)

    def _emit(self, segment: TcpSegment) -> None:
        self.stats["segments_sent"] += 1
        self.stack.send_segment(self, segment)

    def _send_ack(self, duplicate: bool = False) -> None:
        if duplicate:
            self.stats["duplicate_acks_sent"] += 1
        self._emit(self._make_segment("ACK"))

    # ------------------------------------------------------ retransmission

    def _arm_retx_timer(self, rto: float) -> None:
        self._cancel_retx_timer()
        self._retx_timer = self.sim.schedule(
            rto, self._on_retx_timeout, rto, label=self._retx_label
        )

    def _cancel_retx_timer(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None

    def _fast_retransmit(self) -> None:
        """Resend the oldest unacked segment after repeated duplicate ACKs.

        Loss recovery without waiting out the RTO (RFC 5681's signal); the
        backoff schedule and the give-up counter are untouched so the
        retransmission-timeout clock the paper measures keeps its meaning.
        """
        self._dup_acks = 0
        oldest = self._unacked[0]
        self.stats["fast_retransmits"] += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("tcp", "fast_retransmits").inc()
        self._emit(oldest.segment)

    def _on_retx_timeout(self, current_rto: float) -> None:
        self._retx_timer = None
        if not self._unacked or self.state == CLOSED:
            return
        oldest = self._unacked[0]
        if oldest.retransmits >= self.config.max_retransmits:
            # All attempts exhausted: terminate and tell the upper layer.
            self.abort(REASON_RETRANSMIT_TIMEOUT)
            return
        oldest.retransmits += 1
        self.stats["retransmissions"] += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("tcp", "retransmissions").inc()
            # `waited` is the RTO that elapsed before this retransmission —
            # the raw material of the delay attribution's TCP component.
            obs.tracer.event(
                "tcp",
                "retx",
                flow=self.flow_label(),
                seq=oldest.segment.seq,
                attempt=oldest.retransmits,
                waited=current_rto,
            )
        self._emit(oldest.segment)
        next_rto = min(current_rto * self.config.rto_backoff, self.config.rto_max)
        # Paper: "random backoff intervals" — jitter the doubling slightly.
        next_rto *= 1.0 + self.sim.rng.uniform(-0.1, 0.1)
        self._arm_retx_timer(next_rto)

    # ---------------------------------------------------------- keep-alive

    def _arm_keepalive(self) -> None:
        if not self.config.keepalive_enabled:
            return
        if self._keepalive_timer is not None:
            self._keepalive_timer.cancel()
        self._keepalive_timer = self.sim.schedule(
            self.config.keepalive_idle,
            self._on_keepalive_idle,
            label=self._ka_label,
        )

    def _on_keepalive_idle(self) -> None:
        self._keepalive_timer = None
        if self.state != ESTABLISHED:
            return
        if self._probes_outstanding >= self.config.keepalive_probe_count:
            self.abort(REASON_KEEPALIVE_TIMEOUT)
            return
        self._probes_outstanding += 1
        self.stats["keepalive_probes"] += 1
        probe = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq_add(self.snd_nxt, -1),
            ack=self.rcv_nxt,
            flags=frozenset({"ACK"}),
        )
        self._emit(probe)
        self._keepalive_timer = self.sim.schedule(
            self.config.keepalive_probe_interval,
            self._on_keepalive_idle,
            label=self._ka_label,
        )

    # ------------------------------------------------------------- teardown

    def _enter_time_wait(self) -> None:
        self.state = TIME_WAIT
        self.sim.schedule(
            self.config.time_wait,
            self._enter_closed,
            REASON_LOCAL_CLOSE,
            False,
            label="tcp-time-wait",
        )
        self._notify_closed(REASON_LOCAL_CLOSE)

    def _enter_closed(self, reason: str, notify_peer: bool = True) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("tcp", "closes", reason=reason).inc()
        self._cancel_retx_timer()
        if self._keepalive_timer is not None:
            self._keepalive_timer.cancel()
            self._keepalive_timer = None
        self._unacked.clear()
        self._ooo.clear()
        self.stack.forget(self)
        self._notify_closed(reason)

    # ---------------------------------------------------------- app signals

    def _notify_connected(self) -> None:
        if self.callbacks.on_connected is not None:
            self.callbacks.on_connected(self)

    def _notify_closed(self, reason: str) -> None:
        if self._closed_notified:
            return
        self._closed_notified = True
        if self.callbacks.on_closed is not None:
            self.callbacks.on_closed(self, reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TcpConnection({self.local_ip}:{self.local_port} <-> "
            f"{self.remote_ip}:{self.remote_port} {self.state})"
        )
