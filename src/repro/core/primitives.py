"""The paper's two attack primitives: e-Delay and c-Delay (Section IV-C).

A primitive arms a hold on the hijacked path for the target message's
length fingerprint.  When the message is captured, the primitive consults
the :class:`~repro.core.predictor.TimeoutPredictor` and schedules the
release *margin* seconds before the earliest predicted timeout (or at the
requested duration, whichever is shorter) — the recipe that made the
paper's verification test avoid timeouts in 100% of trials while every
delayed message was still accepted.

With no timeout to predict (HomeKit events) and no requested duration, the
hold is indefinite and the caller releases it manually — the "infinite
upper bound" highlighted for HAP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from .hijacker import Hold, TcpHijacker
from .predictor import Prediction, TimeoutBehavior, TimeoutPredictor

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

INF = math.inf

E_DELAY = "e-delay"
C_DELAY = "c-delay"


@dataclass
class DelayOperation:
    """One in-flight (or completed) message delay."""

    kind: str
    hold: Hold
    requested: float | None  # None = as long as safely possible
    margin: float
    prediction: Prediction | None = None
    planned_release_at: float | None = None
    on_release: Callable[["DelayOperation"], None] | None = None
    #: When False, the requested duration is honoured even past a timeout.
    clamp: bool = True

    @property
    def triggered_at(self) -> float | None:
        return self.hold.triggered_at

    @property
    def released_at(self) -> float | None:
        return self.hold.released_at

    @property
    def achieved_delay(self) -> float | None:
        if self.hold.triggered_at is None or self.hold.released_at is None:
            return None
        return self.hold.released_at - self.hold.triggered_at

    @property
    def stealthy(self) -> bool:
        """True when the hold ended by our own release, not a session death."""
        return self.hold.end_reason in ("released", "cancelled")


class _DelayPrimitive:
    """Shared machinery of the two primitives."""

    kind: str = ""

    def __init__(
        self,
        sim: "Simulator",
        hijacker: TcpHijacker,
        behavior: TimeoutBehavior,
        device_ip: str,
        server_ip: str | None = None,
        margin: float = 2.0,
    ) -> None:
        self.sim = sim
        self.hijacker = hijacker
        self.behavior = behavior
        self.device_ip = device_ip
        self.server_ip = server_ip
        self.predictor = TimeoutPredictor(behavior, margin=margin)
        self.margin = margin
        self.operations: list[DelayOperation] = []

    def arm(
        self,
        duration: float | None = None,
        trigger_size: int | None = None,
        on_release: Callable[[DelayOperation], None] | None = None,
        label: str = "",
        clamp: bool = True,
        suppress_close: bool = False,
    ) -> DelayOperation:
        """Arm the primitive for the next matching message.

        ``duration=None`` means "the maximum safe delay"; an explicit
        duration is still clamped to the safe maximum so the attack stays
        stealthy.  ``clamp=False`` holds for exactly ``duration`` even if
        that provokes a timeout — what the profiling campaign and the
        half-open-connection experiment deliberately do.
        """
        hold = self._make_hold(trigger_size, label or self.kind)
        hold.suppress_close = suppress_close
        operation = DelayOperation(
            kind=self.kind,
            hold=hold,
            requested=duration,
            margin=self.margin,
            on_release=on_release,
        )
        operation.clamp = clamp
        hold.on_triggered = lambda h: self._on_triggered(operation)
        self.operations.append(operation)
        return operation

    def release(self, operation: DelayOperation) -> None:
        self.hijacker.release(operation.hold)
        if operation.on_release is not None:
            operation.on_release(operation)

    def cancel(self, operation: DelayOperation) -> None:
        self.hijacker.cancel(operation.hold)

    # ------------------------------------------------------------ internals

    def _make_hold(self, trigger_size: int | None, label: str) -> Hold:
        raise NotImplementedError

    def _predict(self, now: float) -> Prediction:
        raise NotImplementedError

    def _on_triggered(self, operation: DelayOperation) -> None:
        now = self.sim.now
        prediction = self._predict(now)
        operation.prediction = prediction
        safe = (
            max(prediction.at - self.margin - now, 0.0)
            if prediction.bounded
            else INF
        )
        if operation.requested is None:
            duration = safe
        elif operation.clamp:
            duration = min(operation.requested, safe)
        else:
            duration = operation.requested
        if math.isinf(duration):
            return  # indefinite hold; caller releases manually
        operation.planned_release_at = now + duration
        self.sim.schedule(
            duration,
            self._timed_release,
            operation,
            label=f"{self.kind}-release",
        )

    def _timed_release(self, operation: DelayOperation) -> None:
        if operation.hold.released_at is None:
            self.release(operation)


class EDelay(_DelayPrimitive):
    """Delay an IoT *event* message (device -> server)."""

    kind = E_DELAY

    def _make_hold(self, trigger_size: int | None, label: str) -> Hold:
        return self.hijacker.hold_events(
            self.device_ip,
            self.server_ip,
            trigger_size=trigger_size if trigger_size is not None else self.behavior.event_size,
            label=label,
        )

    def _predict(self, now: float) -> Prediction:
        last_delivered = self.hijacker.last_delivery_from(self.device_ip, self.server_ip)
        return self.predictor.event_hold_timeout(now, last_delivered=last_delivered)


class CDelay(_DelayPrimitive):
    """Delay an IoT *command* message (server -> device)."""

    kind = C_DELAY

    def _make_hold(self, trigger_size: int | None, label: str) -> Hold:
        return self.hijacker.hold_commands(
            self.device_ip,
            self.server_ip,
            trigger_size=trigger_size if trigger_size is not None else self.behavior.command_size,
            label=label,
        )

    def _predict(self, now: float) -> Prediction:
        next_ka = None
        if self.behavior.ka_period is not None:
            last_uplink = self.hijacker.last_delivery_from(self.device_ip)
            if last_uplink is not None:
                next_ka = last_uplink + self.behavior.ka_period
        return self.predictor.command_hold_timeout(now, next_ka_send=next_ka)
