"""Timeout-behaviour profiling: the measurement procedure of Section IV-C.

The attacker runs these steps against a device *they own* (same model as
the victim's) to learn its timeout parameters:

1. observe idle traffic — long-live vs on-demand, keep-alive size/period;
2. trigger a normal message — does the next keep-alive shift?  (fixed vs
   on-idle pattern);
3. delay a keep-alive until the session dies — the keep-alive timeout;
4. trigger and delay normal messages right after a keep-alive exchange —
   if the session dies earlier than the keep-alive-anchored prediction,
   that is the message's own timeout; otherwise the message has none (∞).

Everything here observes only wire-visible facts: packet sizes and timing
from the capture, connection FIN/RST/SYN events from the hijacker.  The
profiler *drives the simulation clock itself* (it owns the experiment), so
harness code reads linearly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from ..appproto.keepalive import FIXED, ON_IDLE
from ..simnet.inet import DnsRegistry
from ..simnet.trace import PacketCapture
from .fingerprint import extract_observation
from .hijacker import Hold, TcpHijacker
from .predictor import TimeoutBehavior

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

INF = math.inf

#: Recovery gap between measurement trials (paper: two minutes).
TRIAL_RECOVERY = 120.0
#: Tolerance when deciding whether a measured timeout is "the keep-alive
#: anchored one" (step 4's ∞ detection).
ANCHOR_TOLERANCE = 4.0
#: Abort waiting for a timeout after this much simulated time.
MAX_TIMEOUT_WAIT = 900.0


@dataclass
class TrialResult:
    """One delay-until-timeout trial."""

    started_at: float
    timed_out_at: float | None

    @property
    def measured(self) -> float | None:
        if self.timed_out_at is None:
            return None
        return self.timed_out_at - self.started_at


@dataclass
class ProfileReport:
    """Everything the profiling campaign learned about one device model."""

    device_ip: str
    server_ip: str | None = None
    server_domain: str | None = None
    long_live: bool = True
    ka_period: float | None = None
    ka_strategy: str | None = None
    ka_size: int | None = None
    event_size: int | None = None
    command_size: int | None = None
    ka_trials: list[TrialResult] = field(default_factory=list)
    event_trials: list[TrialResult] = field(default_factory=list)
    command_trials: list[TrialResult] = field(default_factory=list)
    ka_timeout: float | None = None
    event_timeout: float | None = None  # None = unbounded (∞)
    command_timeout: float | None = None
    event_max_delay: float = 0.0  # best measured pre-timeout delay
    command_max_delay: float = 0.0
    notes: list[str] = field(default_factory=list)

    def behavior(self) -> TimeoutBehavior:
        return TimeoutBehavior(
            long_live=self.long_live,
            ka_period=self.ka_period,
            ka_strategy=self.ka_strategy,
            ka_timeout=self.ka_timeout,
            event_timeout=self.event_timeout,
            command_timeout=self.command_timeout,
            keepalive_size=self.ka_size,
            event_size=self.event_size,
            command_size=self.command_size,
        )


class TimeoutProfiler:
    """Runs the Section IV-C measurement campaign against one device."""

    def __init__(
        self,
        sim: "Simulator",
        capture: PacketCapture,
        hijacker: TcpHijacker,
        device_ip: str,
        trigger_event: Callable[[], None],
        trigger_command: Callable[[], None] | None = None,
        dns: DnsRegistry | None = None,
        recovery: float = TRIAL_RECOVERY,
    ) -> None:
        self.sim = sim
        self.capture = capture
        self.hijacker = hijacker
        self.device_ip = device_ip
        self.trigger_event = trigger_event
        self.trigger_command = trigger_command
        self.dns = dns
        self.recovery = recovery
        #: How long one trial waits for a timeout before concluding '∞'.
        #: Table II campaigns lower this: HAP events never time out, so
        #: every trial would otherwise run the full default.
        self.max_wait = MAX_TIMEOUT_WAIT
        self._idle_downlink_sizes: set[int] = set()
        self.report = ProfileReport(device_ip=device_ip)

    # ------------------------------------------------------------ main entry

    def profile(self, trials: int = 3, idle_window: float = 420.0) -> ProfileReport:
        """Run the full campaign.  ``trials`` per message type.

        The paper uses 20 trials per device; tests and benches default
        lower because the simulated stack is deterministic (the bench for
        Table I exposes the trial count as a parameter).
        """
        self.observe_idle(idle_window)
        self.discover_event_size()
        if self.report.long_live:
            self.detect_ka_strategy()
            self.measure_ka_timeout(trials)
        self.measure_event_timeout(trials)
        if self.trigger_command is not None:
            self.discover_command_size()
            self.measure_command_timeout(trials)
        return self.report

    # ---------------------------------------------------------------- step 1

    def observe_idle(self, window: float) -> None:
        self.capture.clear()
        self.sim.run(window)
        # Downlink sizes seen while idle (keep-alive replies) cannot be the
        # command; remember them so command discovery can exclude them.
        self._idle_downlink_sizes = set(self._downlink_sizes_since(0.0))
        observations = extract_observation(self.capture, self.device_ip, self.dns)
        keepalive_flows = [o for o in observations if o.long_live]
        if keepalive_flows:
            obs = keepalive_flows[0]
            self.report.long_live = True
            self.report.ka_period = obs.ka_period
            self.report.ka_size = obs.ka_wire_size
            self.report.server_ip = obs.server_ip
            self.report.server_domain = obs.server_domain
            self.report.notes.append(
                f"idle: keep-alive {obs.ka_wire_size}B every {obs.ka_period:.1f}s"
            )
        else:
            self.report.long_live = False
            self.report.notes.append("idle: no standing session (on-demand device)")

    # ---------------------------------------------------------------- step 2

    def discover_event_size(self) -> None:
        sizes: dict[int, int] = {}
        for _ in range(2):
            mark = self.sim.now
            self.trigger_event()
            self.sim.run(5.0)
            for size in self._uplink_sizes_since(mark):
                if size != self.report.ka_size:
                    sizes[size] = sizes.get(size, 0) + 1
            self.sim.run(5.0)
        if not sizes:
            raise RuntimeError("no event traffic observed after triggering")
        # The event is the largest repeated non-keep-alive size (handshake
        # records on on-demand sessions are smaller).
        repeated = [s for s, n in sizes.items() if n >= 2]
        self.report.event_size = max(repeated or sizes)
        if self.report.server_ip is None:
            observations = extract_observation(self.capture, self.device_ip, self.dns)
            if observations:
                self.report.server_ip = observations[-1].server_ip
                self.report.server_domain = observations[-1].server_domain

    def discover_command_size(self) -> None:
        assert self.trigger_command is not None
        idle_sizes = getattr(self, "_idle_downlink_sizes", set())
        sizes: dict[int, int] = {}
        for _ in range(2):
            mark = self.sim.now
            self.trigger_command()
            self.sim.run(5.0)
            for size in self._downlink_sizes_since(mark):
                if size not in idle_sizes:
                    sizes[size] = sizes.get(size, 0) + 1
            self.sim.run(5.0)
        if not sizes:
            raise RuntimeError("no command traffic observed after triggering")
        self.report.command_size = max(s for s, n in sizes.items() if n == max(sizes.values()))

    # ---------------------------------------------------------------- step 3

    def detect_ka_strategy(self) -> None:
        """Does a normal message postpone the next keep-alive?"""
        period = self.report.ka_period
        assert period is not None and self.report.ka_size is not None
        ka_time = self._wait_for_keepalive()
        # Fire an event mid-period and see when the next keep-alive lands.
        self.sim.run(period * 0.5)
        event_time = self.sim.now
        self.trigger_event()
        next_ka = self._wait_for_keepalive(timeout=period * 2.5)
        drift_from_schedule = abs((next_ka - ka_time) - period)
        drift_from_event = abs((next_ka - event_time) - period)
        if drift_from_event < drift_from_schedule:
            self.report.ka_strategy = ON_IDLE
        else:
            self.report.ka_strategy = FIXED
        self.report.notes.append(
            f"keep-alive pattern: {self.report.ka_strategy} "
            f"(schedule drift {drift_from_schedule:.2f}s vs event drift {drift_from_event:.2f}s)"
        )
        self.sim.run(period)  # settle

    # ---------------------------------------------------------------- step 4

    def measure_ka_timeout(self, trials: int) -> None:
        assert self.report.ka_size is not None
        for _ in range(trials):
            self._wait_for_keepalive()
            hold = self.hijacker.hold_events(
                self.device_ip, self.report.server_ip,
                trigger_size=self.report.ka_size, label="profile-ka",
            )
            result = self._run_delay_trial(hold, trigger=None)
            self.report.ka_trials.append(result)
            self._recover()
        measured = [t.measured for t in self.report.ka_trials if t.measured is not None]
        if measured:
            self.report.ka_timeout = sorted(measured)[len(measured) // 2]
            self.report.notes.append(f"keep-alive timeout ~= {self.report.ka_timeout:.1f}s")

    def measure_event_timeout(self, trials: int) -> None:
        assert self.report.event_size is not None
        for _ in range(trials):
            if self.report.long_live:
                self._wait_for_keepalive()
            hold = self.hijacker.hold_events(
                self.device_ip, self.report.server_ip,
                trigger_size=self.report.event_size, label="profile-event",
            )
            result = self._run_delay_trial(hold, trigger=self.trigger_event)
            self.report.event_trials.append(result)
            self._recover()
        self._conclude_normal_timeout("event")

    def measure_command_timeout(self, trials: int) -> None:
        assert self.report.command_size is not None and self.trigger_command is not None
        for _ in range(trials):
            if self.report.long_live:
                self._wait_for_keepalive()
            hold = self.hijacker.hold_commands(
                self.device_ip, self.report.server_ip,
                trigger_size=self.report.command_size, label="profile-command",
            )
            result = self._run_delay_trial(hold, trigger=self.trigger_command)
            self.report.command_trials.append(result)
            self._recover()
        self._conclude_normal_timeout("command")

    def _conclude_normal_timeout(self, kind: str) -> None:
        trials = self.report.event_trials if kind == "event" else self.report.command_trials
        measured = [t.measured for t in trials if t.measured is not None]
        if not measured:
            # Never timed out inside the observation window.
            if kind == "event":
                self.report.event_timeout = None
                self.report.event_max_delay = INF
            else:
                self.report.command_timeout = None
                self.report.command_max_delay = INF
            self.report.notes.append(f"{kind}: no timeout observed at all")
            return
        value = sorted(measured)[len(measured) // 2]
        anchored = self._ka_anchored_timeout()
        is_anchor = anchored is not None and any(
            abs(m - anchored) <= ANCHOR_TOLERANCE for m in measured
        )
        if kind == "event":
            self.report.event_max_delay = max(measured)
            self.report.event_timeout = None if is_anchor else value
        else:
            self.report.command_max_delay = max(measured)
            self.report.command_timeout = None if is_anchor else value
        mark = "∞ (keep-alive anchored)" if is_anchor else f"{value:.1f}s"
        self.report.notes.append(f"{kind} timeout: {mark}; max delay {max(measured):.1f}s")

    def _ka_anchored_timeout(self) -> float | None:
        """Timeout expected from keep-alives alone, for a hold begun at a
        keep-alive exchange: one period until the next (held) keep-alive,
        plus the keep-alive timeout."""
        if self.report.ka_period is None or self.report.ka_timeout is None:
            return None
        return self.report.ka_period + self.report.ka_timeout

    # ----------------------------------------------------------- trial logic

    def _run_delay_trial(self, hold: Hold, trigger: Callable[[], None] | None) -> TrialResult:
        if trigger is not None:
            trigger()
        if not self._run_until(lambda: hold.triggered_at is not None, self.max_wait):
            self.hijacker.cancel(hold)
            return TrialResult(started_at=self.sim.now, timed_out_at=None)
        started = hold.triggered_at
        assert started is not None

        def closed() -> bool:
            return bool(self.hijacker.close_events_involving(self.device_ip, since=started))

        if self._run_until(closed, self.max_wait):
            close_ts = self.hijacker.close_events_involving(self.device_ip, since=started)[0].ts
            result = TrialResult(started_at=started, timed_out_at=close_ts)
        else:
            result = TrialResult(started_at=started, timed_out_at=None)
        if hold.released_at is None:
            self.hijacker.release(hold, reason="trial-cleanup")
        return result

    def _recover(self) -> None:
        self.sim.run(self.recovery)

    # --------------------------------------------------------------- helpers

    def _run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        # Batch-steps one simulated instant at a time (see
        # repro.experiments._util.run_until): the predicate only changes
        # when events fire, so per-event re-evaluation is pure overhead.
        deadline = self.sim.now + timeout
        while not predicate():
            nxt = self.sim.peek()
            if nxt is None or nxt > deadline:
                self.sim.run_until(deadline)
                return predicate()
            self.sim.run_until(nxt)
        return True

    def _uplink_sizes_since(self, mark: float) -> list[int]:
        sizes = []
        for captured, ip, segment in self.capture.tcp_frames():
            if captured.ts >= mark and ip.src_ip == self.device_ip and segment.payload_size:
                sizes.append(segment.payload_size)
        return sizes

    def _downlink_sizes_since(self, mark: float) -> list[int]:
        sizes = []
        for captured, ip, segment in self.capture.tcp_frames():
            if captured.ts >= mark and ip.dst_ip == self.device_ip and segment.payload_size:
                sizes.append(segment.payload_size)
        return sizes

    def _wait_for_keepalive(self, timeout: float | None = None) -> float:
        """Run until the next keep-alive-sized uplink packet passes.

        Scans the capture incrementally (a cursor, not repeated rescans) so
        long campaigns stay linear in traffic volume.
        """
        assert self.report.ka_size is not None
        window = timeout if timeout is not None else (self.report.ka_period or 60.0) * 2.5
        cursor = len(self.capture.frames)
        found: list[float] = []

        def seen() -> bool:
            nonlocal cursor
            frames = self.capture.frames
            while cursor < len(frames):
                captured = frames[cursor]
                cursor += 1
                payload = captured.frame.payload
                segment = getattr(payload, "payload", None)
                if (
                    payload is not None
                    and getattr(payload, "src_ip", None) == self.device_ip
                    and getattr(segment, "payload_size", 0) == self.report.ka_size
                ):
                    found.append(captured.ts)
                    return True
            return False

        if not self._run_until(seen, window):
            raise RuntimeError("no keep-alive observed while waiting")
        self.sim.run(0.2)  # let the keep-alive's reply complete
        return found[0]
