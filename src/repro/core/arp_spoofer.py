"""ARP spoofing: the session-hijack mechanism (Section III-B).

The attacker repeatedly sends unsolicited ARP replies so that each victim
maps the *other* victim's IP address to the attacker's MAC: the device
resolves the gateway (or the HomePod) to the attacker, and the gateway
resolves the device to the attacker.  All IP traffic between the pair then
flows through the attacker's NIC, where the
:class:`~repro.core.hijacker.TcpHijacker` takes over.

Victims re-ARP when their cache entries expire; the spoofer both re-poisons
on a short period and answers observed ARP requests, so genuine mappings
survive only for a few milliseconds — long enough to be realistic, short
enough that a slipped packet merely reorders (TCP reassembly repairs it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..simnet.host import Host
from ..simnet.packet import ArpPacket, EthernetFrame

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: How often the poison is refreshed; must stay well under the ARP TTL.
DEFAULT_REPOISON_PERIOD = 5.0
#: Delay before answering an observed ARP request with poison, so our reply
#: lands after (and overrides) the genuine one.
REQUEST_OVERRIDE_DELAY = 0.050


@dataclass(frozen=True)
class SpoofTarget:
    """One poisoned pair: make each endpoint see us as the other."""

    victim_ip: str
    victim_mac: str
    impersonated_ip: str


class ArpSpoofer:
    """Keeps a set of victim pairs poisoned from the attacker host."""

    def __init__(self, host: Host, period: float = DEFAULT_REPOISON_PERIOD) -> None:
        self.host = host
        self.sim: "Simulator" = host.sim
        self.period = period
        self.targets: list[SpoofTarget] = []
        self._running = False
        self._timer = None
        self.replies_sent = 0
        host.frame_taps.append(self._on_frame)

    # -------------------------------------------------------------- control

    def poison_pair(self, ip_a: str, mac_a: str, ip_b: str, mac_b: str) -> None:
        """Interpose between two LAN endpoints (device and gateway/HomePod)."""
        self.targets.append(SpoofTarget(victim_ip=ip_a, victim_mac=mac_a, impersonated_ip=ip_b))
        self.targets.append(SpoofTarget(victim_ip=ip_b, victim_mac=mac_b, impersonated_ip=ip_a))
        if self._running:
            self._poison_all()

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._poison_all()
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------ poisoning

    def _poison_all(self) -> None:
        for target in self.targets:
            self._send_poison(target)

    def _send_poison(self, target: SpoofTarget) -> None:
        self.replies_sent += 1
        self.host.send_arp_reply(
            claimed_ip=target.impersonated_ip,
            to_mac=target.victim_mac,
            to_ip=target.victim_ip,
        )

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self._timer = self.sim.schedule(self.period, self._tick, label="arp-spoof")

    def _tick(self) -> None:
        self._timer = None
        self._poison_all()
        self._schedule_next()

    # ---------------------------------------------------- request overriding

    def _on_frame(self, frame: EthernetFrame) -> None:
        """Overhear victim ARP requests and race the genuine reply."""
        if not self._running or not isinstance(frame.payload, ArpPacket):
            return
        arp = frame.payload
        if arp.op != "request":
            return
        for target in self.targets:
            if arp.sender_ip == target.victim_ip and arp.target_ip == target.impersonated_ip:
                self.sim.schedule(
                    REQUEST_OVERRIDE_DELAY,
                    self._send_poison,
                    target,
                    label="arp-spoof-override",
                )
