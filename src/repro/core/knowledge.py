"""The attacker's shareable knowledge base (Section IV-C, step 1).

"Note that the profiling is a one-time effort and the collected knowledge
can be shared among attackers."  This module makes that concrete: profiled
timeout behaviours serialise to a JSON document keyed by device model, so a
campaign on a new victim network needs only recognition + lookup.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..devices.profiles import CATALOGUE, Catalogue
from .predictor import TimeoutBehavior
from .profiler import ProfileReport

FORMAT_VERSION = 1


@dataclass
class KnowledgeEntry:
    """One profiled device model."""

    label: str
    model: str
    behavior: TimeoutBehavior
    source: str = "profiled"  # "profiled" | "catalogue" | "shared"
    trials: int = 0
    notes: list[str] = field(default_factory=list)


class KnowledgeBase:
    """Profiled timeout behaviours, persistable and mergeable."""

    def __init__(self) -> None:
        self._entries: dict[str, KnowledgeEntry] = {}

    # ------------------------------------------------------------- building

    def add_report(self, label: str, model: str, report: ProfileReport) -> KnowledgeEntry:
        entry = KnowledgeEntry(
            label=label,
            model=model,
            behavior=report.behavior(),
            source="profiled",
            trials=len(report.event_trials),
            notes=list(report.notes),
        )
        self._entries[label] = entry
        return entry

    def add_behavior(self, label: str, model: str, behavior: TimeoutBehavior,
                     source: str = "shared") -> KnowledgeEntry:
        entry = KnowledgeEntry(label=label, model=model, behavior=behavior, source=source)
        self._entries[label] = entry
        return entry

    @classmethod
    def from_catalogue(cls, catalogue: Catalogue | None = None) -> "KnowledgeBase":
        """Ground-truth knowledge, as if every model had been profiled.

        HomeKit-paired variants of a model behave differently from their
        cloud-connected twins, so Table II entries are keyed ``LABEL:hk``.
        """
        kb = cls()
        for profile in catalogue or CATALOGUE:
            key = profile.label if profile.table == 1 else f"{profile.label}:hk"
            kb.add_behavior(
                key,
                profile.model,
                TimeoutBehavior.from_profile(profile),
                source="catalogue",
            )
        return kb

    # --------------------------------------------------------------- lookup

    def lookup(self, label: str) -> KnowledgeEntry:
        try:
            return self._entries[label]
        except KeyError:
            raise LookupError(f"no knowledge of device model {label!r}") from None

    def behavior_of(self, label: str) -> TimeoutBehavior:
        return self.lookup(label).behavior

    def known_labels(self) -> list[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def merge(self, other: "KnowledgeBase", prefer_profiled: bool = True) -> None:
        """Fold another attacker's knowledge in.

        Measured ("profiled") entries beat catalogue/shared ones when both
        exist, unless ``prefer_profiled`` is off.
        """
        rank = {"profiled": 2, "shared": 1, "catalogue": 0}
        for label, entry in other._entries.items():
            existing = self._entries.get(label)
            if (
                existing is None
                or not prefer_profiled
                or rank[entry.source] >= rank[existing.source]
            ):
                self._entries[label] = entry

    # ---------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        doc = {
            "format": FORMAT_VERSION,
            "entries": [
                {
                    "label": e.label,
                    "model": e.model,
                    "source": e.source,
                    "trials": e.trials,
                    "notes": e.notes,
                    "behavior": asdict(e.behavior),
                }
                for e in self._entries.values()
            ],
        }
        Path(path).write_text(json.dumps(doc, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "KnowledgeBase":
        doc = json.loads(Path(path).read_text())
        if doc.get("format") != FORMAT_VERSION:
            raise ValueError(f"unsupported knowledge-base format: {doc.get('format')!r}")
        kb = cls()
        for raw in doc["entries"]:
            entry = KnowledgeEntry(
                label=raw["label"],
                model=raw["model"],
                behavior=TimeoutBehavior(**raw["behavior"]),
                source=raw.get("source", "shared"),
                trials=raw.get("trials", 0),
                notes=list(raw.get("notes", [])),
            )
            kb._entries[entry.label] = entry
        return kb
