"""The paper's contribution: phantom-delay attack primitives and attacks.

Kill chain, in the paper's order:

1. :class:`~repro.core.profiler.TimeoutProfiler` — learn a device model's
   timeout behaviour (offline, on attacker-owned hardware);
2. :class:`~repro.core.fingerprint.FingerprintDatabase` — recognise victim
   devices from encrypted traffic metadata;
3. :class:`~repro.core.arp_spoofer.ArpSpoofer` +
   :class:`~repro.core.hijacker.TcpHijacker` — interpose on the session;
4. :class:`~repro.core.primitives.EDelay` /
   :class:`~repro.core.primitives.CDelay` — the attack primitives;
5. :mod:`repro.core.attacks` — Type-I/II/III end-to-end attacks.

:class:`~repro.core.attacker.PhantomDelayAttacker` bundles the chain.
"""

from .arp_spoofer import ArpSpoofer, SpoofTarget
from .attacker import PhantomDelayAttacker
from .fingerprint import (
    FingerprintDatabase,
    FlowObservation,
    Match,
    TrafficSignature,
    extract_observation,
)
from .hijacker import (
    DOWNLINK,
    EVENT_FIN,
    EVENT_RST,
    EVENT_SYN,
    FlowEvent,
    Hold,
    TcpHijacker,
    UPLINK,
)
from .predictor import (
    CAUSE_COMMAND_RESPONSE,
    CAUSE_EVENT_ACK,
    CAUSE_KEEPALIVE_REPLY,
    CAUSE_NONE,
    CAUSE_SERVER_LIVENESS,
    Prediction,
    TimeoutBehavior,
    TimeoutPredictor,
)
from .inference import RuleHypothesis, RuleInferencer, render_hypotheses
from .knowledge import KnowledgeBase, KnowledgeEntry
from .primitives import CDelay, DelayOperation, EDelay
from .profiler import ProfileReport, TimeoutProfiler, TrialResult

__all__ = [
    "ArpSpoofer",
    "CAUSE_COMMAND_RESPONSE",
    "CAUSE_EVENT_ACK",
    "CAUSE_KEEPALIVE_REPLY",
    "CAUSE_NONE",
    "CAUSE_SERVER_LIVENESS",
    "CDelay",
    "DOWNLINK",
    "DelayOperation",
    "EDelay",
    "EVENT_FIN",
    "EVENT_RST",
    "EVENT_SYN",
    "FingerprintDatabase",
    "FlowEvent",
    "FlowObservation",
    "Hold",
    "KnowledgeBase",
    "KnowledgeEntry",
    "Match",
    "PhantomDelayAttacker",
    "Prediction",
    "ProfileReport",
    "RuleHypothesis",
    "RuleInferencer",
    "SpoofTarget",
    "render_hypotheses",
    "TcpHijacker",
    "TimeoutBehavior",
    "TimeoutPredictor",
    "TrafficSignature",
    "TrialResult",
    "UPLINK",
    "extract_observation",
]
