"""Type-II: Action Delay Attack (Section V-B).

An automation rule's action is delayed by e-Delaying its trigger event,
c-Delaying its command, or both (the paper's August-lock case combines
them for a >=60 s window).  The disorder variant delays one of two opposing
actions past the other, leaving e.g. a door unlocked overnight.
"""

from __future__ import annotations

from ...devices.base import IoTDevice
from ..attacker import PhantomDelayAttacker
from ..predictor import TimeoutBehavior
from ..primitives import CDelay, DelayOperation, EDelay
from .base import Scenario


class ActionDelay:
    """Coordinates trigger-side and command-side delays for one rule."""

    def __init__(
        self,
        attacker: PhantomDelayAttacker,
        trigger_device: IoTDevice | None = None,
        action_device: IoTDevice | None = None,
        peer_ip: str | None = None,
    ) -> None:
        if trigger_device is None and action_device is None:
            raise ValueError("need a trigger device, an action device, or both")
        self.attacker = attacker
        self.trigger_device = trigger_device
        self.action_device = action_device
        self._e_delay: EDelay | None = None
        self._c_delay: CDelay | None = None
        self.operations: list[DelayOperation] = []

        if trigger_device is not None:
            ip = Scenario.uplink_ip_of(trigger_device)
            attacker.interpose(ip, peer_ip=peer_ip)
            self._e_delay = attacker.e_delay(
                ip, TimeoutBehavior.from_profile(trigger_device.profile)
            )
        if action_device is not None:
            ip = Scenario.uplink_ip_of(action_device)
            attacker.interpose(ip, peer_ip=peer_ip)
            self._c_delay = attacker.c_delay(
                ip, TimeoutBehavior.from_profile(action_device.profile)
            )

    def arm_trigger_delay(self, duration: float | None = None) -> DelayOperation:
        """e-Delay the rule's trigger event."""
        if self._e_delay is None or self.trigger_device is None:
            raise RuntimeError("no trigger device configured")
        operation = self._e_delay.arm(
            duration=duration,
            trigger_size=self.trigger_device.profile.event_size,
            label=f"type-II-trigger:{self.trigger_device.device_id}",
        )
        self.operations.append(operation)
        return operation

    def arm_command_delay(self, duration: float | None = None) -> DelayOperation:
        """c-Delay the rule's action command."""
        if self._c_delay is None or self.action_device is None:
            raise RuntimeError("no action device configured")
        operation = self._c_delay.arm(
            duration=duration,
            trigger_size=self.action_device.profile.command_size,
            label=f"type-II-command:{self.action_device.device_id}",
        )
        self.operations.append(operation)
        return operation

    @property
    def total_window(self) -> float:
        """Combined achieved delay across both sides (paper: >=60 s)."""
        return sum(op.achieved_delay or 0.0 for op in self.operations)
