"""Type-I: State-Update Delay Attack (Section V-A).

Delay the event that reports a critical device state — a smoke alert, a
water leak, a door opening — so the user's notification arrives dozens of
seconds to minutes late, while no layer raises any alert.
"""

from __future__ import annotations

from ...devices.base import IoTDevice
from ..attacker import PhantomDelayAttacker
from ..predictor import TimeoutBehavior
from ..primitives import DelayOperation, EDelay
from .base import Scenario


class StateUpdateDelay:
    """Arms e-Delay against one device's state-update events."""

    def __init__(
        self,
        attacker: PhantomDelayAttacker,
        device: IoTDevice,
        behavior: TimeoutBehavior | None = None,
        peer_ip: str | None = None,
    ) -> None:
        self.attacker = attacker
        self.device = device
        self.behavior = behavior or TimeoutBehavior.from_profile(device.profile)
        self.uplink_ip = Scenario.uplink_ip_of(device)
        attacker.interpose(self.uplink_ip, peer_ip=peer_ip)
        self._primitive: EDelay = attacker.e_delay(self.uplink_ip, self.behavior)
        self.operations: list[DelayOperation] = []

    def arm(self, duration: float | None = None) -> DelayOperation:
        """Delay the device's next event (``None`` = maximum safe delay).

        The hold keys on the device's event-length fingerprint, so on a hub
        session only the *target child's* event starts the delay.
        """
        operation = self._primitive.arm(
            duration=duration,
            trigger_size=self.device.profile.event_size,
            label=f"type-I:{self.device.device_id}",
        )
        self.operations.append(operation)
        return operation

    def release(self, operation: DelayOperation) -> None:
        self._primitive.release(operation)
