"""The paper's PoC attack cases (Table III and Figure 3).

Each scenario reproduces one real-world automation rule collected from IoT
user forums, with the devices the paper used (or their catalogue stand-ins)
and the attack the paper demonstrated.  The consequence column of Table III
is what ``measure`` returns; the Table III bench prints the rows.
"""

from __future__ import annotations

from typing import Any

from ...automation.dsl import parse_rule
from ...testbed import SmartHomeTestbed
from ..attacker import PhantomDelayAttacker
from .action_delay import ActionDelay
from .base import (
    Scenario,
    TYPE_ACTION_DELAY,
    TYPE_DISABLED_EXECUTION,
    TYPE_SPURIOUS_EXECUTION,
    TYPE_STATE_UPDATE_DELAY,
)
from .erroneous_execution import DisabledExecution, SpuriousExecution
from .state_update_delay import StateUpdateDelay


def _first_action_time(device, command: str) -> float | None:
    for ts, name, _data in device.actions_executed:
        if name == command:
            return ts
    return None


# ---------------------------------------------------------------------------
# Type-I: state-update delay


class Case1FrontDoorVoiceAlert(Scenario):
    """Case 1: front door opened -> voice notification (late burglary alert)."""

    name = "case1-front-door-voice-alert"
    case_id = "Case 1"
    attack_type = TYPE_STATE_UPDATE_DELAY
    description = "Front door opened -> voice notification"
    rule_source = "[6]"
    duration = 90.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        contact = tb.add_device("C1")  # Ring contact via its base station
        tb.add_device("SPK1")
        tb.install_rule(
            parse_rule('WHEN c1 contact.open THEN NOTIFY voice "Front door opened"')
        )
        return {"contact": contact}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        ctx["incident_at"] = tb.now + 5.0
        tb.sim.schedule(5.0, ctx["contact"].stimulate, "open")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        delay = StateUpdateDelay(attacker, ctx["contact"])
        ctx["operation"] = delay.arm(duration=None)  # maximum safe delay

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        delivered = tb.notifier.first_delivery_time("Front door opened")
        latency = None if delivered is None else delivered - ctx["incident_at"]
        out: dict[str, Any] = {"alert_latency": latency, "alert_delivered": delivered is not None}
        operation = ctx.get("operation")
        if operation is not None:
            out["achieved_delay"] = operation.achieved_delay
            out["stealthy_hold"] = operation.stealthy
        return out


class Case2MotionMobileAlert(Case1FrontDoorVoiceAlert):
    """Case 2: motion active -> mobile notification."""

    name = "case2-motion-mobile-alert"
    case_id = "Case 2"
    description = "Motion active -> mobile notification"
    rule_source = "[6]"

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        motion = tb.add_device("M1")  # Ring motion detector via the base
        tb.install_rule(
            parse_rule('WHEN m1 motion.active THEN NOTIFY push "Motion detected at home"')
        )
        return {"contact": motion}  # reuse parent's timeline machinery

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        ctx["incident_at"] = tb.now + 5.0
        tb.sim.schedule(5.0, ctx["contact"].stimulate, "active")

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        delivered = tb.notifier.first_delivery_time("Motion detected")
        latency = None if delivered is None else delivered - ctx["incident_at"]
        out: dict[str, Any] = {"alert_latency": latency, "alert_delivered": delivered is not None}
        operation = ctx.get("operation")
        if operation is not None:
            out["achieved_delay"] = operation.achieved_delay
            out["stealthy_hold"] = operation.stealthy
        return out


class Fig3aSmokeAlert(Case1FrontDoorVoiceAlert):
    """Figure 3(a): kitchen smoke detector's alert delayed."""

    name = "fig3a-smoke-alert"
    case_id = "Fig 3a"
    description = "Smoke detected -> phone alert"
    rule_source = "Fig. 3a"

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        smoke = tb.add_device("SM1")
        tb.install_rule(
            parse_rule('WHEN sm1 smoke.detected THEN NOTIFY push "Smoke detected in the kitchen"')
        )
        return {"contact": smoke}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        ctx["incident_at"] = tb.now + 5.0
        tb.sim.schedule(5.0, ctx["contact"].stimulate, "detected")

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        delivered = tb.notifier.first_delivery_time("Smoke detected")
        latency = None if delivered is None else delivered - ctx["incident_at"]
        out: dict[str, Any] = {"alert_latency": latency, "alert_delivered": delivered is not None}
        operation = ctx.get("operation")
        if operation is not None:
            out["achieved_delay"] = operation.achieved_delay
            out["stealthy_hold"] = operation.stealthy
        return out


# ---------------------------------------------------------------------------
# Type-II: action delay


class Case3DoorCloseAutoLock(Scenario):
    """Case 3: front door closed -> lock the door (lock delayed 30-58 s)."""

    name = "case3-door-close-auto-lock"
    case_id = "Case 3"
    attack_type = TYPE_ACTION_DELAY
    description = "Front door closed -> lock the door"
    rule_source = "[12]"
    duration = 120.0
    #: The August server expects the lock's command ack ~27 s after sending;
    #: the ack leaves *after* release, so on a lossy LAN it may need a full
    #: sender-RTO repair (1 s+) that the attacker cannot shepherd.  Budget
    #: the round trip: a 3.5 s margin still yields a >20 s phantom delay.
    attack_margin = 3.5

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        contact = tb.add_device("C2")
        lock = tb.add_device("LK1")
        tb.install_rule(parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock"))
        return {"contact": contact, "lock": lock}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        lock = ctx["lock"]
        lock.state[lock.behavior.attribute] = "unlocked"  # user just came in
        ctx["closed_at"] = tb.now + 5.0
        tb.sim.schedule(5.0, ctx["contact"].stimulate, "closed")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        action_delay = ActionDelay(attacker, action_device=ctx["lock"])
        ctx["operation"] = action_delay.arm_command_delay(duration=None)

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        locked_at = _first_action_time(ctx["lock"], "lock")
        latency = None if locked_at is None else locked_at - ctx["closed_at"]
        out: dict[str, Any] = {
            "lock_latency": latency,
            "locked_eventually": ctx["lock"].attribute_value == "locked",
        }
        operation = ctx.get("operation")
        if operation is not None:
            out["achieved_delay"] = operation.achieved_delay
        return out


class Fig3bWaterValve(Scenario):
    """Figure 3(b): water leak -> shut-off valve, both sides delayed."""

    name = "fig3b-water-valve"
    case_id = "Fig 3b"
    attack_type = TYPE_ACTION_DELAY
    description = "Water leak detected -> close the water valve"
    rule_source = "Fig. 3b"
    duration = 150.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        leak = tb.add_device("WL1")
        valve = tb.add_device("V1")
        tb.install_rule(parse_rule("WHEN wl1 water.wet THEN COMMAND v1 close"))
        return {"leak": leak, "valve": valve}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        ctx["leak_at"] = tb.now + 5.0
        tb.sim.schedule(5.0, ctx["leak"].stimulate, "wet")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        action_delay = ActionDelay(
            attacker, trigger_device=ctx["leak"], action_device=ctx["valve"]
        )
        ctx["trigger_op"] = action_delay.arm_trigger_delay(duration=None)
        ctx["command_op"] = action_delay.arm_command_delay(duration=None)
        ctx["action_delay"] = action_delay

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        closed_at = _first_action_time(ctx["valve"], "close")
        latency = None if closed_at is None else closed_at - ctx["leak_at"]
        out: dict[str, Any] = {
            "shutoff_latency": latency,
            "valve_closed": ctx["valve"].attribute_value == "closed",
        }
        if "action_delay" in ctx:
            out["combined_window"] = ctx["action_delay"].total_window
        return out


class Case4ArmedHeaterOff(Scenario):
    """Case 4: arming the security system should turn the heater off.

    The Ring event is delayed past Alexa's 30 s staleness window, so the
    integration silently discards it and the heater stays on forever
    (Finding 2: no notification, no alarm — the routine is disabled).
    """

    name = "case4-armed-heater-off"
    case_id = "Case 4"
    attack_type = TYPE_ACTION_DELAY
    description = "Home security system armed -> turn off heater"
    rule_source = "[12]"
    duration = 150.0
    integration_staleness = 30.0  # Alexa's observed discard window

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        base = tb.add_device("HS1")
        heater = tb.add_device("P4")
        tb.install_rule(parse_rule("WHEN hs1 security.armed-away THEN COMMAND p4 off"))
        return {"base": base, "heater": heater}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        heater = ctx["heater"]
        heater.state[heater.behavior.attribute] = "on"  # heater running
        ctx["armed_at"] = tb.now + 5.0
        tb.sim.schedule(5.0, ctx["base"].stimulate, "armed-away")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        delay = StateUpdateDelay(attacker, ctx["base"])
        # Hold just past the discard window; well inside HS1's 60 s budget.
        ctx["operation"] = delay.arm(duration=35.0)

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        off_at = _first_action_time(ctx["heater"], "off")
        return {
            "heater_turned_off": off_at is not None,
            "heater_state": ctx["heater"].attribute_value,
            "events_discarded": tb.integration.stats["events_discarded"],
        }


# ---------------------------------------------------------------------------
# Type-III: spurious execution


class Case5DisarmOnUnlock(Scenario):
    """Case 5: door unlocked IF entrance motion inactive -> disarm security."""

    name = "case5-disarm-on-unlock"
    case_id = "Case 5"
    attack_type = TYPE_SPURIOUS_EXECUTION
    description = "Front door unlocked, if entrance motion inactive, disarm security"
    rule_source = "[7]"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        lock = tb.add_device("LK1")
        motion = tb.add_device("M2")
        base = tb.add_device("HS2")
        tb.install_rule(
            parse_rule(
                "WHEN lk1 lock.unlocked IF m2.motion == inactive THEN COMMAND hs2 disarm"
            )
        )
        return {"lock": lock, "motion": motion, "base": base}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        base = ctx["base"]
        base.state[base.behavior.attribute] = "armed-away"
        # Seed the shadow: entrance quiet, then someone approaches, then the
        # door is unlocked (e.g. by a returning housemate's key fob).
        tb.sim.schedule(1.0, ctx["motion"].stimulate, "inactive")
        tb.sim.schedule(8.0, ctx["motion"].stimulate, "active")
        tb.sim.schedule(14.0, ctx["lock"].stimulate, "unlocked")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        spurious = SpuriousExecution(attacker, ctx["motion"])
        # Arm after the seeding event has passed (its size would trigger the
        # hold), before the condition-falsifying 'motion.active'.
        tb.sim.schedule(self.observe + 4.0, spurious.arm, None)
        ctx["spurious"] = spurious

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        disarm_at = _first_action_time(ctx["base"], "disarm")
        return {
            "disarmed": disarm_at is not None,
            "security_state": ctx["base"].attribute_value,
        }


class Case6BedroomHeater(Scenario):
    """Case 6: bedroom motion IF bedroom door closed -> turn on heater."""

    name = "case6-bedroom-heater"
    case_id = "Case 6"
    attack_type = TYPE_SPURIOUS_EXECUTION
    description = "Bedroom motion active, if bedroom door closed, turn on bedroom heater"
    rule_source = "[5]"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        # The trigger motion and the condition contact must not share one
        # hub session — holding the condition event would hold the trigger
        # too (order is preserved on a flow).  The paper's homes mix
        # vendors, so the bedroom motion here is a WiFi sensor.
        motion = tb.add_device("M7")
        contact = tb.add_device("C3")
        heater = tb.add_device("P2")
        tb.install_rule(
            parse_rule("WHEN m7 motion.active IF c3.contact == closed THEN COMMAND p2 on")
        )
        return {"motion": motion, "contact": contact, "heater": heater}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["contact"].stimulate, "closed")
        tb.sim.schedule(8.0, ctx["contact"].stimulate, "open")  # door opened
        tb.sim.schedule(14.0, ctx["motion"].stimulate, "active")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        spurious = SpuriousExecution(attacker, ctx["contact"])
        tb.sim.schedule(self.observe + 4.0, spurious.arm, None)
        ctx["spurious"] = spurious

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        on_at = _first_action_time(ctx["heater"], "on")
        return {
            "heater_turned_on": on_at is not None,
            "heater_state": ctx["heater"].attribute_value,
        }


class Case7StudyWindow(Scenario):
    """Case 7: study motion IF study door closed -> open the study window."""

    name = "case7-study-window"
    case_id = "Case 7"
    attack_type = TYPE_SPURIOUS_EXECUTION
    description = "Study motion active, if study door closed, open the study window"
    rule_source = "[5]"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        motion = tb.add_device("M3")   # Hue motion via the bridge
        contact = tb.add_device("C2")
        window = tb.add_device("P3")   # window-opener relay plug
        tb.install_rule(
            parse_rule("WHEN m3 motion.active IF c2.contact == closed THEN COMMAND p3 on")
        )
        return {"motion": motion, "contact": contact, "window": window}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["contact"].stimulate, "closed")
        tb.sim.schedule(8.0, ctx["contact"].stimulate, "open")
        tb.sim.schedule(14.0, ctx["motion"].stimulate, "active")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        spurious = SpuriousExecution(attacker, ctx["contact"])
        tb.sim.schedule(self.observe + 4.0, spurious.arm, None)
        ctx["spurious"] = spurious

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        opened_at = _first_action_time(ctx["window"], "on")
        return {
            "window_opened": opened_at is not None,
            "window_state": ctx["window"].attribute_value,
        }


class Case8StormDoorUnlock(Scenario):
    """Case 8 / Figure 3(c): the storm-door break-in.

    Rule: storm door opened IF the resident is present -> unlock the
    interior door.  The attacker holds 'presence.away' when the resident
    leaves, then pulls the storm door: the stale condition unlocks the
    house for them.
    """

    name = "case8-storm-door-unlock"
    case_id = "Case 8"
    attack_type = TYPE_SPURIOUS_EXECUTION
    description = "Storm door opened, if presence on, unlock the interior door"
    rule_source = "[5]"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        # Matching the paper's build: a SmartThings presence sensor, an
        # August lock, and a SmartLife WiFi contact sensor on the storm
        # door — three *different* sessions, so holding the presence event
        # leaves the storm-door trigger free to race past it.
        storm = tb.add_device("C5")
        presence = tb.add_device("PR1")
        lock = tb.add_device("LK1")
        tb.install_rule(
            parse_rule(
                "WHEN c5 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock"
            )
        )
        return {"storm": storm, "presence": presence, "lock": lock}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["presence"].stimulate, "present")
        tb.sim.schedule(8.0, ctx["presence"].stimulate, "away")  # resident leaves
        # The burglar pulls the storm door while 'away' is still in transit
        # — they watch the hold trigger and act inside the worst-case
        # window (grace alone is 16 s for the SmartThings session).
        ctx["pulled_at"] = tb.now + 18.0
        tb.sim.schedule(18.0, ctx["storm"].stimulate, "open")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        spurious = SpuriousExecution(attacker, ctx["presence"])
        tb.sim.schedule(self.observe + 4.0, spurious.arm, None)
        ctx["spurious"] = spurious

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        unlock_at = _first_action_time(ctx["lock"], "unlock")
        return {
            "unlocked": unlock_at is not None,
            "lock_state": ctx["lock"].attribute_value,
        }


# ---------------------------------------------------------------------------
# Type-III: disabled execution


class Case9DoorOpenText(Scenario):
    """Case 9: presence away IF front door open -> send text message."""

    name = "case9-door-open-text"
    case_id = "Case 9"
    attack_type = TYPE_DISABLED_EXECUTION
    description = "Presence away, if front door open, send text message"
    rule_source = "[4]"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        # Condition contact on its own (Tuya WiFi) session, so its event
        # can be delayed without holding the presence trigger.
        presence = tb.add_device("PR1")
        contact = tb.add_device("C5")
        tb.install_rule(
            parse_rule(
                'WHEN pr1 presence.away IF c5.contact == open THEN NOTIFY sms "Front door left open!"'
            )
        )
        return {"presence": presence, "contact": contact}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["contact"].stimulate, "closed")
        tb.sim.schedule(8.0, ctx["contact"].stimulate, "open")  # left open!
        tb.sim.schedule(14.0, ctx["presence"].stimulate, "away")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        disabled = DisabledExecution(attacker, ctx["contact"])
        tb.sim.schedule(self.observe + 4.0, disabled.arm, None)
        ctx["disabled"] = disabled

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        return {
            "warning_sent": tb.notifier.first_delivery_time("Front door left open") is not None,
        }


class Case10AutoLockOnLeave(Scenario):
    """Case 10: presence away IF front door unlocked -> lock the front door.

    Holding the 'lock.unlocked' event until after 'presence.away' leaves
    the condition stale-false: the door stays unlocked the whole day.
    """

    name = "case10-auto-lock-on-leave"
    case_id = "Case 10"
    attack_type = TYPE_DISABLED_EXECUTION
    description = "Presence away, if front door unlocked, lock the front door"
    rule_source = "[5]"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        presence = tb.add_device("PR1")
        lock = tb.add_device("LK1")
        tb.install_rule(
            parse_rule(
                "WHEN pr1 presence.away IF lk1.lock == unlocked THEN COMMAND lk1 lock"
            )
        )
        return {"presence": presence, "lock": lock}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["lock"].stimulate, "locked")  # seed shadow
        tb.sim.schedule(8.0, ctx["lock"].stimulate, "unlocked")  # user exits
        tb.sim.schedule(16.0, ctx["presence"].stimulate, "away")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        disabled = DisabledExecution(attacker, ctx["lock"])
        tb.sim.schedule(self.observe + 4.0, disabled.arm, None)
        ctx["disabled"] = disabled

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        lock_cmd_at = _first_action_time(ctx["lock"], "lock")
        return {
            "auto_locked": lock_cmd_at is not None,
            "lock_state": ctx["lock"].attribute_value,
        }


class Case11HeaterOffOnLeave(Scenario):
    """Case 11: presence away IF heater on -> turn off heater."""

    name = "case11-heater-off-on-leave"
    case_id = "Case 11"
    attack_type = TYPE_DISABLED_EXECUTION
    description = "Presence away, if heater is on, turn off heater"
    rule_source = "[10]"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        presence = tb.add_device("PR1")
        heater = tb.add_device("P4")
        tb.install_rule(
            parse_rule("WHEN pr1 presence.away IF p4.switch == on THEN COMMAND p4 off")
        )
        return {"presence": presence, "heater": heater}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["heater"].stimulate, "off")  # seed shadow
        tb.sim.schedule(8.0, ctx["heater"].stimulate, "on")   # heater running
        tb.sim.schedule(16.0, ctx["presence"].stimulate, "away")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        disabled = DisabledExecution(attacker, ctx["heater"])
        tb.sim.schedule(self.observe + 4.0, disabled.arm, None)
        ctx["disabled"] = disabled

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        off_at = _first_action_time(ctx["heater"], "off")
        return {
            "heater_turned_off": off_at is not None,
            "heater_state": ctx["heater"].attribute_value,
        }


class Fig3dDoorCloseLockDisabled(Scenario):
    """Figure 3(d): door closed IF lock unlocked -> lock; disabled forever."""

    name = "fig3d-door-close-lock-disabled"
    case_id = "Fig 3d"
    attack_type = TYPE_DISABLED_EXECUTION
    description = "Front door closed, if lock unlocked, lock the front door"
    rule_source = "Fig. 3d"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        contact = tb.add_device("C2")
        lock = tb.add_device("LK1")
        tb.install_rule(
            parse_rule(
                "WHEN c2 contact.closed IF lk1.lock == unlocked THEN COMMAND lk1 lock"
            )
        )
        return {"contact": contact, "lock": lock}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["lock"].stimulate, "locked")     # seed shadow
        tb.sim.schedule(8.0, ctx["lock"].stimulate, "unlocked")   # user exits
        tb.sim.schedule(12.0, ctx["contact"].stimulate, "open")
        tb.sim.schedule(16.0, ctx["contact"].stimulate, "closed")

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        disabled = DisabledExecution(attacker, ctx["lock"])
        tb.sim.schedule(self.observe + 4.0, disabled.arm, None)
        ctx["disabled"] = disabled

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        lock_cmd_at = _first_action_time(ctx["lock"], "lock")
        return {
            "auto_locked": lock_cmd_at is not None,
            "lock_state": ctx["lock"].attribute_value,
        }


class DelayedTriggerSpurious(Scenario):
    """Extension case (paper Section V-C subtype 1): delayed *trigger*.

    The trigger event is generated while the condition is false, then
    delayed until after a later event has turned the condition true — so
    the late trigger fires spuriously.  This is the one erroneous-execution
    shape that Section VII-B's timestamp checking *does* stop, which is why
    the countermeasures experiment runs it with and without the defence.
    """

    name = "ext-delayed-trigger-spurious"
    case_id = "Case V-C1"
    attack_type = TYPE_SPURIOUS_EXECUTION
    description = "Motion active (delayed trigger), if door closed, turn on heater"
    rule_source = "Section V-C(1)"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        motion = tb.add_device("M7")   # trigger on its own on-demand session
        contact = tb.add_device("C3")
        heater = tb.add_device("P2")
        tb.install_rule(
            parse_rule("WHEN m7 motion.active IF c3.contact == closed THEN COMMAND p2 on")
        )
        return {"motion": motion, "contact": contact, "heater": heater}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["contact"].stimulate, "open")     # condition false
        tb.sim.schedule(6.0, ctx["motion"].stimulate, "active")    # trigger: no fire
        tb.sim.schedule(12.0, ctx["contact"].stimulate, "closed")  # condition true

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        delay = StateUpdateDelay(attacker, ctx["motion"])
        ctx["operation"] = delay.arm(duration=20.0)  # trigger lands after +26

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        on_at = _first_action_time(ctx["heater"], "on")
        return {
            "heater_turned_on": on_at is not None,
            "stale_triggers_suppressed": len(
                tb.integration.engine.stale_triggers_suppressed
            ),
        }


class DisorderedOppositeActions(Scenario):
    """Extension case (Section V-B): disordering two opposite actions.

    Two rules drive the same lock — presence unlocks it, door-closed locks
    it.  When the user returns, the attacker holds 'presence.present' until
    after the door has closed: the lock command executes first, then the
    stale presence event spuriously unlocks — the door stays unlocked
    overnight.
    """

    name = "ext-disordered-opposite-actions"
    case_id = "Case V-B"
    attack_type = TYPE_SPURIOUS_EXECUTION
    description = "Presence unlocks / door-closed locks: actions disordered"
    rule_source = "Section V-B"
    duration = 120.0

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        presence = tb.add_device("PR1")   # SmartThings session
        contact = tb.add_device("C5")     # Tuya on-demand session
        lock = tb.add_device("LK1")       # August session
        tb.install_rule(parse_rule("WHEN pr1 presence.present THEN COMMAND lk1 unlock"))
        tb.install_rule(parse_rule("WHEN c5 contact.closed THEN COMMAND lk1 lock"))
        return {"presence": presence, "contact": contact, "lock": lock}

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        tb.sim.schedule(1.0, ctx["presence"].stimulate, "away")  # seed shadow
        tb.sim.schedule(8.0, ctx["presence"].stimulate, "present")  # returns home
        tb.sim.schedule(12.0, ctx["contact"].stimulate, "open")    # walks in
        tb.sim.schedule(16.0, ctx["contact"].stimulate, "closed")  # door shuts

    def attack(self, tb, ctx, attacker: PhantomDelayAttacker) -> None:
        # Hold 'presence.present' past the door-closed lock command.
        spurious = SpuriousExecution(attacker, ctx["presence"])
        tb.sim.schedule(self.observe + 4.0, spurious.arm, 20.0)
        ctx["spurious"] = spurious

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        lock = ctx["lock"]
        order = [name for _, name, _ in lock.actions_executed]
        return {
            "action_order": "->".join(order),
            "final_state": lock.attribute_value,
            "left_unlocked": lock.attribute_value == "unlocked",
        }


#: The paper's Table III, in order, plus the Figure 3 illustrations.
TABLE3_SCENARIOS: list[Scenario] = [
    Case1FrontDoorVoiceAlert(),
    Case2MotionMobileAlert(),
    Case3DoorCloseAutoLock(),
    Case4ArmedHeaterOff(),
    Case5DisarmOnUnlock(),
    Case6BedroomHeater(),
    Case7StudyWindow(),
    Case8StormDoorUnlock(),
    Case9DoorOpenText(),
    Case10AutoLockOnLeave(),
    Case11HeaterOffOnLeave(),
]

FIGURE3_SCENARIOS: list[Scenario] = [
    Fig3aSmokeAlert(),
    Fig3bWaterValve(),
    Case8StormDoorUnlock(),  # Figure 3(c) is the storm-door case
    Fig3dDoorCloseLockDisabled(),
]


def scenario_by_case(case_id: str) -> Scenario:
    for scenario in TABLE3_SCENARIOS + FIGURE3_SCENARIOS:
        if scenario.case_id == case_id:
            return scenario
    raise LookupError(f"no scenario for {case_id!r}")
