"""Attack planning: from an automation rule set to concrete attack plans.

The paper shows the primitives compose into "rich attacks" (Section V) and
that rules can be inferred from traffic (Section VI-D2 infers the
lock-on-close rule from one day's events).  This module operationalises the
step in between: given the rules an attacker has inferred and the device
models they have recognised, enumerate every attack opportunity —

* **Type-I** against notification rules (delay the trigger event),
* **Type-II** against command rules (delay the trigger event, the command,
  or both; the windows add),
* **Type-III spurious** against conditional rules (hold the event that
  would falsify the condition),
* **Type-III disabled** (hold the event that would satisfy it),

with per-opportunity feasibility checks (a condition event can only be
delayed *independently* of the trigger when the two devices do not share
one uplink session) and the achievable window from the profiled timeout
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...analysis.reporting import TextTable, fmt_window
from ...automation.rules import CommandAction, NotifyAction, Rule
from ...devices.behaviors import behavior_for
from ...devices.profiles import CATALOGUE, Catalogue, DeviceProfile

# Severity heuristic by the actuated device kind / notification purpose.
CRITICAL_KINDS = frozenset({"lock", "security-base", "valve", "garage", "siren"})
ELEVATED_KINDS = frozenset({"thermostat", "camera", "smoke", "water-leak"})

SEVERITY_CRITICAL = "critical"
SEVERITY_ELEVATED = "elevated"
SEVERITY_LOW = "low"


@dataclass(frozen=True)
class AttackOpportunity:
    """One way to attack one rule."""

    rule_id: str
    rule_text: str
    attack_type: str  # the Section V families
    delay_target: str  # device whose messages are held
    direction: str  # "event" or "command"
    window: tuple[float, float]
    severity: str
    feasible: bool
    mechanism: str
    caveat: str = ""


class AttackPlanner:
    """Enumerates attack opportunities over inferred rules."""

    def __init__(
        self,
        device_profiles: dict[str, DeviceProfile],
        catalogue: Catalogue | None = None,
    ) -> None:
        """``device_profiles`` maps runtime device ids to recognised models
        (the output of the fingerprinting step)."""
        self.device_profiles = device_profiles
        self.catalogue = catalogue or CATALOGUE

    # ------------------------------------------------------------- analysis

    def analyze(self, rules: list[Rule]) -> list[AttackOpportunity]:
        opportunities: list[AttackOpportunity] = []
        for rule in rules:
            opportunities.extend(self._analyze_rule(rule))
        order = {SEVERITY_CRITICAL: 0, SEVERITY_ELEVATED: 1, SEVERITY_LOW: 2}
        opportunities.sort(key=lambda o: (order[o.severity], not o.feasible, o.rule_id))
        return opportunities

    def _analyze_rule(self, rule: Rule) -> list[AttackOpportunity]:
        out: list[AttackOpportunity] = []
        trigger_dev = rule.trigger.device_id
        severity = self._severity(rule)

        # Type-I / Type-II: delay the trigger event.
        if self._known(trigger_dev):
            window = self.device_profiles[trigger_dev].event_delay_window()
            attack_type = (
                "state-update-delay"
                if isinstance(rule.action, NotifyAction)
                else "action-delay"
            )
            out.append(
                AttackOpportunity(
                    rule_id=rule.rule_id,
                    rule_text=str(rule),
                    attack_type=attack_type,
                    delay_target=trigger_dev,
                    direction="event",
                    window=window,
                    severity=severity,
                    feasible=True,
                    mechanism=f"e-Delay '{rule.trigger.event_name}' from {trigger_dev}",
                )
            )

        # Type-II: delay the action command.
        if isinstance(rule.action, CommandAction) and self._known(rule.action.device_id):
            profile = self.device_profiles[rule.action.device_id]
            window = profile.command_delay_window()
            if window is not None:
                out.append(
                    AttackOpportunity(
                        rule_id=rule.rule_id,
                        rule_text=str(rule),
                        attack_type="action-delay",
                        delay_target=rule.action.device_id,
                        direction="command",
                        window=window,
                        severity=severity,
                        feasible=True,
                        mechanism=(
                            f"c-Delay '{rule.action.command}' toward "
                            f"{rule.action.device_id} (windows add with the trigger delay)"
                        ),
                    )
                )

        # Type-III: delay the condition device's events.
        if rule.condition is not None and self._known(rule.condition.device_id):
            out.extend(self._condition_opportunities(rule, severity))
        return out

    def _condition_opportunities(self, rule: Rule, severity: str) -> list[AttackOpportunity]:
        condition = rule.condition
        assert condition is not None
        cond_dev = condition.device_id
        profile = self.device_profiles[cond_dev]
        window = profile.event_delay_window()
        feasible, caveat = self._independently_delayable(rule.trigger.device_id, cond_dev)
        behavior = behavior_for(profile.kind)
        other_values = [v for v in behavior.sensor_values if v != condition.equals]
        falsifier = (
            f"{condition.attribute}.{other_values[0]}" if other_values else "(state change)"
        )
        satisfier = f"{condition.attribute}.{condition.equals}"
        return [
            AttackOpportunity(
                rule_id=rule.rule_id,
                rule_text=str(rule),
                attack_type="spurious-execution",
                delay_target=cond_dev,
                direction="event",
                window=window,
                severity=severity,
                feasible=feasible,
                mechanism=(
                    f"hold '{falsifier}' from {cond_dev} past the trigger: the "
                    f"stale condition fires the action"
                ),
                caveat=caveat,
            ),
            AttackOpportunity(
                rule_id=rule.rule_id,
                rule_text=str(rule),
                attack_type="disabled-execution",
                delay_target=cond_dev,
                direction="event",
                window=window,
                severity=severity,
                feasible=feasible,
                mechanism=(
                    f"hold '{satisfier}' from {cond_dev} past the trigger: the "
                    f"action never runs"
                ),
                caveat=caveat,
            ),
        ]

    # -------------------------------------------------------------- helpers

    def _known(self, device_id: str) -> bool:
        return device_id in self.device_profiles

    def _independently_delayable(self, trigger_dev: str, cond_dev: str) -> tuple[bool, str]:
        """Can the condition event be held while the trigger flows freely?

        Two devices sharing one uplink session (same hub, or the same
        device) are held together — order on a flow is preserved — so the
        race cannot be created.
        """
        if trigger_dev == cond_dev:
            return False, "trigger and condition are the same device"
        if not self._known(trigger_dev):
            return True, "trigger device unrecognised; assumed on its own session"
        t_profile = self.device_profiles[trigger_dev]
        c_profile = self.device_profiles[cond_dev]
        t_uplink = t_profile.hub_label or f"wifi:{trigger_dev}"
        c_uplink = c_profile.hub_label or f"wifi:{cond_dev}"
        if t_uplink == c_uplink:
            return False, f"trigger and condition share the {t_uplink} session"
        return True, ""

    def _severity(self, rule: Rule) -> str:
        if isinstance(rule.action, CommandAction):
            profile = self.device_profiles.get(rule.action.device_id)
            kind = profile.kind if profile is not None else ""
            if kind in CRITICAL_KINDS:
                return SEVERITY_CRITICAL
            if kind in ELEVATED_KINDS:
                return SEVERITY_ELEVATED
            return SEVERITY_LOW
        # Notifications: severity follows what they warn about.
        trigger_profile = self.device_profiles.get(rule.trigger.device_id)
        kind = trigger_profile.kind if trigger_profile is not None else ""
        if kind in ELEVATED_KINDS or kind in CRITICAL_KINDS or kind in ("contact", "motion", "keypad"):
            return SEVERITY_ELEVATED
        return SEVERITY_LOW


def render_plan(opportunities: list[AttackOpportunity]) -> str:
    table = TextTable(
        ["Rule", "Attack", "Delay target", "Dir", "Window", "Severity", "Feasible", "Mechanism"],
        title=f"Attack plan — {len(opportunities)} opportunities",
    )
    for opp in opportunities:
        feasible = "yes" if opp.feasible else f"NO ({opp.caveat})"
        table.add_row(
            opp.rule_id,
            opp.attack_type,
            opp.delay_target,
            opp.direction,
            fmt_window(opp.window),
            opp.severity,
            feasible,
            opp.mechanism,
        )
    return table.render()
