"""Scenario framework for the end-to-end attacks (Section V / Table III).

A :class:`Scenario` describes one PoC case: which devices and automation
rules exist, the physical-world timeline, what the attacker does, and what
to measure.  :func:`run_scenario` executes it twice-comparable — the same
seed and timeline with and without the attack — so every bench reports a
clean "without attack vs with attack" row like the paper's demonstrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from ...devices.base import IoTDevice
from ...testbed import SmartHomeTestbed
from ..attacker import PhantomDelayAttacker
from ..predictor import TimeoutBehavior

if TYPE_CHECKING:  # pragma: no cover
    pass

# Attack type labels (paper Section V).
TYPE_STATE_UPDATE_DELAY = "state-update-delay"
TYPE_ACTION_DELAY = "action-delay"
TYPE_SPURIOUS_EXECUTION = "spurious-execution"
TYPE_DISABLED_EXECUTION = "disabled-execution"


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    scenario: str
    attacked: bool
    metrics: dict[str, Any] = field(default_factory=dict)
    alarms: dict[str, int] = field(default_factory=dict)
    notifications: list[tuple[float, str]] = field(default_factory=list)
    #: Observability facade of the run (None unless run with ``observe``).
    obs: Any = None
    #: Invariant violations observed (None unless run with
    #: ``check_invariants``; an empty list means every invariant held).
    invariant_violations: list[Any] | None = None
    #: Fault-injector stats of the run (None on the ideal link).
    fault_stats: dict[str, int] | None = None

    @property
    def stealthy(self) -> bool:
        """No alarm of any kind was raised during the run."""
        return not self.alarms


class Scenario:
    """One reproducible PoC case; subclasses fill in the five hooks."""

    name = "scenario"
    case_id = ""  # "Case 1" .. "Case 11" / "Fig 3a" ..
    attack_type = ""
    description = ""
    rule_source = ""  # forum reference in the paper's Table III
    duration = 120.0
    settle = 10.0
    #: Sniffing window between interposition and the timeline: the attacker
    #: watches at least one keep-alive pass so the session phase is known
    #: and the full delay window is available.  Runs in baseline too, so
    #: the two runs stay time-aligned.
    observe = 40.0
    integration_staleness: float | None = None
    #: Section VII-B timestamp checking, when a run evaluates the defence.
    trigger_timestamp_window: float | None = None
    #: Safety margin the attacker budgets between the predicted timeout and
    #: the release instant.  Per-scenario because the attacker tunes it to
    #: the target: a tight post-release deadline (e.g. a server-side command
    #: ack window) needs extra slack for TCP repair on a lossy LAN, while a
    #: hold that must exceed some fixed window needs the margin small.
    attack_margin = 2.0

    # ------------------------------------------------------------- hooks

    def build(self, tb: SmartHomeTestbed) -> dict[str, Any]:
        """Create devices and install rules; returns the scenario context."""
        raise NotImplementedError

    def timeline(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> None:
        """Schedule the physical-world events (same with/without attack)."""
        raise NotImplementedError

    def attack(
        self, tb: SmartHomeTestbed, ctx: dict[str, Any], attacker: PhantomDelayAttacker
    ) -> None:
        """Interpose and arm the delay primitives."""
        raise NotImplementedError

    def measure(self, tb: SmartHomeTestbed, ctx: dict[str, Any]) -> dict[str, Any]:
        """Extract the scenario's outcome metrics."""
        raise NotImplementedError

    # ------------------------------------------------------------ helpers

    @staticmethod
    def behavior_of(device: IoTDevice) -> TimeoutBehavior:
        """The attacker's pre-profiled knowledge of this device model.

        Profiling is a one-time offline effort against attacker-owned
        hardware (Section IV-C); scenarios therefore read the behaviour
        from the knowledge base rather than re-measuring every run.  The
        Table I/II benches validate that measuring reproduces these values.
        """
        return TimeoutBehavior.from_profile(device.profile)

    @staticmethod
    def uplink_ip_of(device: IoTDevice) -> str:
        """The LAN IP whose session carries this device's messages."""
        from ...devices.base import HubChildDevice

        if isinstance(device, HubChildDevice):
            return device.hub.ip
        return device.host.ip  # type: ignore[attr-defined]


def run_scenario(
    scenario: Scenario,
    attacked: bool,
    seed: int = 0,
    observe: bool = False,
    faults: Any = None,
    check_invariants: bool = False,
) -> ScenarioResult:
    """Execute one scenario run and collect its result.

    With ``observe`` the testbed records metrics and causal spans; the
    result's ``obs`` field exposes them for post-run attribution.  With
    ``faults`` (a :class:`~repro.faults.FaultProfile` or spec string) the
    LAN runs impaired; with ``check_invariants`` the cross-layer
    :class:`~repro.faults.InvariantSuite` audits the whole run.
    """
    tb = SmartHomeTestbed(
        seed=seed,
        integration_staleness=scenario.integration_staleness,
        trigger_timestamp_window=scenario.trigger_timestamp_window,
        observe=observe,
        faults=faults,
        check_invariants=check_invariants,
    )
    ctx = scenario.build(tb)
    tb.settle(scenario.settle)
    if attacked:
        attacker = PhantomDelayAttacker.deploy(tb, margin=scenario.attack_margin)
        ctx["attacker"] = attacker
        scenario.attack(tb, ctx, attacker)
    tb.run(scenario.observe)
    mark = tb.now
    ctx["timeline_start"] = mark
    scenario.timeline(tb, ctx)
    tb.run(scenario.duration)
    metrics = scenario.measure(tb, ctx)
    return ScenarioResult(
        scenario=scenario.name,
        attacked=attacked,
        metrics=metrics,
        alarms=tb.alarms.summary(),
        notifications=[
            (n.delivered_at, n.message)
            for n in tb.notifier.notifications
            if n.delivered_at is not None
        ],
        obs=tb.obs if observe else None,
        invariant_violations=(
            list(tb.invariants.violations) if tb.invariants is not None else None
        ),
        fault_stats=(
            dict(tb.fault_injector.stats) if tb.fault_injector is not None else None
        ),
    )


def compare_scenario(
    scenario: Scenario,
    seed: int = 0,
    observe: bool = False,
    faults: Any = None,
    check_invariants: bool = False,
) -> tuple[ScenarioResult, ScenarioResult]:
    """Run the same scenario without and with the attack.

    Faults and invariant checking apply to *both* runs, so the comparison
    stays fair: the baseline fights the same network the attack does.
    """
    baseline = run_scenario(
        scenario,
        attacked=False,
        seed=seed,
        observe=observe,
        faults=faults,
        check_invariants=check_invariants,
    )
    attacked = run_scenario(
        scenario,
        attacked=True,
        seed=seed,
        observe=observe,
        faults=faults,
        check_invariants=check_invariants,
    )
    return baseline, attacked
