"""The three attack families built on e-Delay / c-Delay (Section V)."""

from .action_delay import ActionDelay
from .base import (
    Scenario,
    ScenarioResult,
    TYPE_ACTION_DELAY,
    TYPE_DISABLED_EXECUTION,
    TYPE_SPURIOUS_EXECUTION,
    TYPE_STATE_UPDATE_DELAY,
    compare_scenario,
    run_scenario,
)
from .campaign import ArmedAttack, AttackCampaign, CampaignReport, render_campaign
from .erroneous_execution import ConditionEventDelay, DisabledExecution, SpuriousExecution
from .planner import AttackOpportunity, AttackPlanner, render_plan
from .scenarios import (
    FIGURE3_SCENARIOS,
    TABLE3_SCENARIOS,
    scenario_by_case,
)
from .state_update_delay import StateUpdateDelay

__all__ = [
    "ActionDelay",
    "ArmedAttack",
    "AttackCampaign",
    "AttackOpportunity",
    "AttackPlanner",
    "CampaignReport",
    "render_campaign",
    "ConditionEventDelay",
    "render_plan",
    "DisabledExecution",
    "FIGURE3_SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "SpuriousExecution",
    "StateUpdateDelay",
    "TABLE3_SCENARIOS",
    "TYPE_ACTION_DELAY",
    "TYPE_DISABLED_EXECUTION",
    "TYPE_SPURIOUS_EXECUTION",
    "TYPE_STATE_UPDATE_DELAY",
    "compare_scenario",
    "run_scenario",
    "scenario_by_case",
]
