"""Type-III: Erroneous Execution Attacks (Section V-C).

Both subtypes work by holding the event that would flip a rule's condition,
making the server's shadow state disagree with the physical world when the
trigger arrives:

* **Spurious Execution** — hold the event that would have turned the
  condition *false* (e.g. ``presence.away``); the trigger then fires the
  action that should not have been issued (the storm-door unlock, Case 8).
* **Disabled Execution** — hold the event that would have turned the
  condition *true* (e.g. ``lock.unlocked``); the trigger then finds the
  condition unmet and the safety action never runs (Case 10).

Formally (paper's notation): the attacker forces ``S(E_c) > S(E_t)`` even
though ``I(E_c) < I(E_t)``.
"""

from __future__ import annotations

from ...devices.base import IoTDevice
from ..attacker import PhantomDelayAttacker
from ..predictor import TimeoutBehavior
from ..primitives import DelayOperation, EDelay
from .base import Scenario


class ConditionEventDelay:
    """Hold a condition device's next state event past the trigger."""

    subtype = "erroneous-execution"

    def __init__(
        self,
        attacker: PhantomDelayAttacker,
        condition_device: IoTDevice,
        behavior: TimeoutBehavior | None = None,
        peer_ip: str | None = None,
    ) -> None:
        self.attacker = attacker
        self.condition_device = condition_device
        self.behavior = behavior or TimeoutBehavior.from_profile(condition_device.profile)
        self.uplink_ip = Scenario.uplink_ip_of(condition_device)
        attacker.interpose(self.uplink_ip, peer_ip=peer_ip)
        self._primitive: EDelay = attacker.e_delay(self.uplink_ip, self.behavior)
        self.operation: DelayOperation | None = None

    def arm(self, duration: float | None = None) -> DelayOperation:
        """Arm on the condition device's event fingerprint.

        ``duration=None`` holds for the maximum safe window — the attacker
        needs the hold to outlive the trigger event, and the Section VI-D3
        demonstrations show the profiled windows (40 s for the presence
        sensor, 16 s+ for SmartThings devices) cover realistic trigger gaps.
        """
        self.operation = self._primitive.arm(
            duration=duration,
            trigger_size=self.condition_device.profile.event_size,
            label=f"type-III:{self.condition_device.device_id}",
        )
        return self.operation

    def release(self) -> None:
        if self.operation is not None:
            self._primitive.release(self.operation)


class SpuriousExecution(ConditionEventDelay):
    """Delay the condition-falsifying event so a forbidden action fires."""

    subtype = "spurious-execution"


class DisabledExecution(ConditionEventDelay):
    """Delay the condition-enabling event so a required action never fires."""

    subtype = "disabled-execution"
