"""Campaign execution: from an attack plan to armed primitives.

Closes the loop the planner opens: given the opportunities
:class:`~repro.core.attacks.planner.AttackPlanner` enumerated for a live
home, interpose on every needed session and arm the corresponding
primitives, then report what actually happened — the achieved delays and
whether stealth held.

This is the shape of the paper's end-state attacker: one compromised
device, a rule set inferred or assumed, and *every* vulnerable automation
in the home degraded at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...analysis.reporting import TextTable
from ...devices.base import IoTDevice
from ...testbed import SmartHomeTestbed
from ..attacker import PhantomDelayAttacker
from ..predictor import TimeoutBehavior
from ..primitives import DelayOperation
from .planner import AttackOpportunity


@dataclass
class ArmedAttack:
    opportunity: AttackOpportunity
    operation: DelayOperation


@dataclass
class CampaignReport:
    armed: list[ArmedAttack] = field(default_factory=list)
    skipped: list[tuple[AttackOpportunity, str]] = field(default_factory=list)

    def triggered(self) -> list[ArmedAttack]:
        return [a for a in self.armed if a.operation.triggered_at is not None]

    def all_stealthy(self) -> bool:
        return all(a.operation.stealthy for a in self.triggered())


class AttackCampaign:
    """Arms a set of planned opportunities against one live home."""

    def __init__(self, testbed: SmartHomeTestbed, attacker: PhantomDelayAttacker) -> None:
        self.testbed = testbed
        self.attacker = attacker
        self.report = CampaignReport()

    # ------------------------------------------------------------ execution

    def arm(self, opportunities: list[AttackOpportunity]) -> CampaignReport:
        """Interpose and arm one primitive per feasible opportunity."""
        for opportunity in opportunities:
            if not opportunity.feasible:
                self.report.skipped.append((opportunity, opportunity.caveat))
                continue
            device = self.testbed.devices.get(opportunity.delay_target)
            if device is None:
                self.report.skipped.append((opportunity, "device not present"))
                continue
            self._arm_one(opportunity, device)
        return self.report

    def _arm_one(self, opportunity: AttackOpportunity, device: IoTDevice) -> None:
        uplink_ip = self._uplink_ip(device)
        self.attacker.interpose(uplink_ip)
        behavior = TimeoutBehavior.from_profile(device.profile)
        if opportunity.direction == "command":
            primitive = self.attacker.c_delay(uplink_ip, behavior)
            trigger_size = device.profile.command_size
        else:
            primitive = self.attacker.e_delay(uplink_ip, behavior)
            trigger_size = device.profile.event_size
        operation = primitive.arm(
            trigger_size=trigger_size,
            label=f"campaign:{opportunity.rule_id}:{opportunity.attack_type}",
        )
        self.report.armed.append(ArmedAttack(opportunity=opportunity, operation=operation))

    @staticmethod
    def _uplink_ip(device: IoTDevice) -> str:
        from ...devices.base import HubChildDevice

        if isinstance(device, HubChildDevice):
            return device.hub.ip
        return device.host.ip  # type: ignore[attr-defined]


def render_campaign(report: CampaignReport) -> str:
    table = TextTable(
        ["Rule", "Attack", "Target", "Triggered", "Achieved delay", "Stealthy"],
        title=(
            f"Campaign: {len(report.armed)} armed, "
            f"{len(report.skipped)} skipped, "
            f"{len(report.triggered())} triggered"
        ),
    )
    for armed in report.armed:
        operation = armed.operation
        table.add_row(
            armed.opportunity.rule_id,
            armed.opportunity.attack_type,
            armed.opportunity.delay_target,
            operation.triggered_at is not None,
            f"{operation.achieved_delay:.1f}s" if operation.achieved_delay is not None else "-",
            {True: "yes", False: "NO"}[operation.stealthy]
            if operation.triggered_at is not None
            else "-",
        )
    for opportunity, reason in report.skipped:
        table.add_row(
            opportunity.rule_id, opportunity.attack_type, opportunity.delay_target,
            "-", "-", f"skipped: {reason}",
        )
    return table.render()
