"""Automation-rule inference from encrypted traffic (Section VI-D2).

The paper's action-delay demonstration starts by *inferring* the
"front door closed → lock the door" rule: "from one day's events, we can
reasonably infer this automation rule by observing the behavior pattern
between the lock's locking commands and the events of door closing.  We can
proactively verify this hypothesis by adding small delays of five seconds
on events of front door closing, and check whether the 'door locking'
actions are also delayed by five seconds."

This module implements both steps against capture metadata only:

* **passive correlation** — repeated (uplink event, downlink command) pairs
  within a short window across the LAN's flows become rule hypotheses;
* **active verification** — e-Delay the hypothesised trigger by a small
  probe delay and check the command shifts by the same amount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from ..analysis.reporting import TextTable
from ..simnet.trace import PacketCapture
from .attacker import PhantomDelayAttacker
from .predictor import TimeoutBehavior

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Payloads below this are control chatter (keep-alives, compact acks);
#: events and commands are bigger.
MIN_MESSAGE_BYTES = 150
#: An automation's command follows its trigger within this window
#: (event uplink + cloud processing + command downlink).
CORRELATION_WINDOW = 2.0
#: Hypotheses need at least this many co-occurrences.
MIN_SUPPORT = 2
#: Verification tolerance on the probe-delay shift.
SHIFT_TOLERANCE = 1.0


@dataclass
class WireMessage:
    ts: float
    device_ip: str
    size: int
    uplink: bool


@dataclass
class RuleHypothesis:
    """A suspected trigger(event) -> action(command) automation."""

    trigger_ip: str
    trigger_size: int
    command_ip: str
    command_size: int
    support: int
    mean_latency: float
    verified: bool | None = None  # None = not yet probed
    probe_shift: float | None = None

    def describe(self) -> str:
        return (
            f"{self.trigger_ip}[{self.trigger_size}B] -> "
            f"{self.command_ip}[{self.command_size}B] "
            f"(support={self.support}, latency~{self.mean_latency:.2f}s)"
        )


def extract_messages(
    capture: PacketCapture,
    lan_prefix: str = "192.168.1.",
    min_bytes: int = MIN_MESSAGE_BYTES,
    since: float = 0.0,
) -> list[WireMessage]:
    """Event/command-sized payloads from the capture, oriented by LAN side."""
    messages: list[WireMessage] = []
    seen: set[tuple[float, str, int, bool]] = set()
    for captured, ip, segment in capture.tcp_frames():
        if captured.ts < since or segment.payload_size < min_bytes:
            continue
        if ip.src_ip.startswith(lan_prefix):
            key = (captured.ts, ip.src_ip, segment.payload_size, True)
            message = WireMessage(captured.ts, ip.src_ip, segment.payload_size, True)
        elif ip.dst_ip.startswith(lan_prefix):
            key = (captured.ts, ip.dst_ip, segment.payload_size, False)
            message = WireMessage(captured.ts, ip.dst_ip, segment.payload_size, False)
        else:
            continue
        # The hijacked path shows each packet twice (in and out); dedupe on
        # near-identical observations.
        rounded = (round(key[0], 1), key[1], key[2], key[3])
        if rounded in seen:
            continue
        seen.add(rounded)
        messages.append(message)
    return messages


class RuleInferencer:
    """Passive hypothesis mining plus the paper's active probe verification."""

    def __init__(
        self,
        attacker: PhantomDelayAttacker,
        lan_prefix: str = "192.168.1.",
        correlation_window: float = CORRELATION_WINDOW,
        min_support: int = MIN_SUPPORT,
    ) -> None:
        self.attacker = attacker
        self.sim: "Simulator" = attacker.sim
        self.lan_prefix = lan_prefix
        self.correlation_window = correlation_window
        self.min_support = min_support

    # ------------------------------------------------------------- passive

    def hypothesize(self, since: float = 0.0) -> list[RuleHypothesis]:
        """Mine (event, command) correlations from the capture so far."""
        messages = extract_messages(
            self.attacker.capture, lan_prefix=self.lan_prefix, since=since
        )
        events = [m for m in messages if m.uplink]
        commands = [m for m in messages if not m.uplink]
        pairs: dict[tuple[str, int, str, int], list[float]] = {}
        for command in commands:
            candidates = [
                e for e in events
                if 0.0 < command.ts - e.ts <= self.correlation_window
            ]
            if not candidates:
                continue
            event = max(candidates, key=lambda e: e.ts)  # nearest predecessor
            key = (event.device_ip, event.size, command.device_ip, command.size)
            pairs.setdefault(key, []).append(command.ts - event.ts)
        hypotheses = []
        for (t_ip, t_size, c_ip, c_size), latencies in pairs.items():
            if len(latencies) < self.min_support:
                continue
            hypotheses.append(
                RuleHypothesis(
                    trigger_ip=t_ip,
                    trigger_size=t_size,
                    command_ip=c_ip,
                    command_size=c_size,
                    support=len(latencies),
                    mean_latency=sum(latencies) / len(latencies),
                )
            )
        hypotheses.sort(key=lambda h: -h.support)
        return hypotheses

    # -------------------------------------------------------------- active

    def verify(
        self,
        hypothesis: RuleHypothesis,
        behavior: TimeoutBehavior,
        trigger_physical: Callable[[], None],
        probe_delay: float = 5.0,
        wait: float = 30.0,
    ) -> bool:
        """The paper's probe: delay the trigger; does the command shift too?

        ``trigger_physical`` makes the physical world produce the suspected
        trigger event (in a real deployment the attacker waits for a natural
        occurrence instead).  Requires the trigger flow to be interposed.
        """
        operation = self.attacker.e_delay(hypothesis.trigger_ip, behavior).arm(
            duration=probe_delay,
            trigger_size=hypothesis.trigger_size,
            label="rule-probe",
        )
        mark = self.sim.now
        trigger_physical()
        self.sim.run(wait)
        command_times = [
            m.ts
            for m in extract_messages(
                self.attacker.capture, lan_prefix=self.lan_prefix, since=mark
            )
            if not m.uplink
            and m.device_ip == hypothesis.command_ip
            and m.size == hypothesis.command_size
        ]
        if operation.triggered_at is None or not command_times:
            hypothesis.verified = False
            return False
        shift = (command_times[0] - operation.triggered_at) - hypothesis.mean_latency
        hypothesis.probe_shift = shift
        hypothesis.verified = abs(shift - probe_delay) <= SHIFT_TOLERANCE
        return hypothesis.verified


def render_hypotheses(hypotheses: list[RuleHypothesis]) -> str:
    table = TextTable(
        ["Trigger", "Command", "Support", "Latency", "Probe shift", "Verified"],
        title=f"Inferred automation rules ({len(hypotheses)} hypotheses)",
    )
    for h in hypotheses:
        table.add_row(
            f"{h.trigger_ip} [{h.trigger_size}B]",
            f"{h.command_ip} [{h.command_size}B]",
            h.support,
            f"{h.mean_latency:.2f}s",
            f"{h.probe_shift:.2f}s" if h.probe_shift is not None else "-",
            {None: "-", True: "yes", False: "NO"}[h.verified],
        )
    return table.render()
