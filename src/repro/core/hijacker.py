"""The TCP hijacker middle-box (Figure 2).

After ARP spoofing, every packet between the target device and its server
crosses the attacker's NIC.  The hijacker implements the paper's delay
method at that vantage point:

* **transparent pass-through** by default — nothing is dropped, modified,
  or reordered, so TLS stays silent;
* **hold**: from the first data segment matching the target message's
  length fingerprint, buffer that segment and every later data segment in
  the same direction, while immediately sending a **forged TCP ACK** to the
  sender so its retransmission timer never fires and its keep-alive timer
  keeps being reset (TCP ACKs are cleartext and independent of the payload
  — the decoupling the paper identifies);
* **ordered release**: held segments are re-sent unmodified and in their
  original order, so the TLS record sequence (and MAC) verifies perfectly
  at the receiver.

TCP keep-alive probes carry no data and simply pass through — the genuine
endpoint answers them, which is equivalent to the paper's forged probe ACKs
and equally silent.

The hijacker never reads TLS plaintext and never consults simulation
internals: its only inputs are cleartext TCP/IP headers and payload sizes,
exactly an on-path attacker's view.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from ..simnet.host import Host
from ..simnet.packet import EthernetFrame, IpPacket
from ..simnet.trace import FlowKey
from ..tcp.segment import TcpSegment, seq_add, seq_leq, seq_lt

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Hold directions, named from the device's point of view.
UPLINK = "uplink"      # device -> server: events (e-Delay)
DOWNLINK = "downlink"  # server -> device: commands (c-Delay)

# Flow event kinds surfaced to observers (the profiler's raw material).
EVENT_SYN = "syn"
EVENT_FIN = "fin"
EVENT_RST = "rst"

_hold_ids = itertools.count(1)


@dataclass(frozen=True)
class FlowEvent:
    """A connection-lifecycle observation on the hijacked path."""

    ts: float
    flow: FlowKey
    kind: str
    from_ip: str


@dataclass
class HeldPacket:
    ts: float
    packet: IpPacket

    @property
    def segment(self) -> TcpSegment:
        return self.packet.payload


@dataclass
class Hold:
    """One armed (then triggered) delay operation."""

    hold_id: int
    device_ip: str
    direction: str
    server_ip: str | None = None
    #: Payload length that identifies the target message; None = first data.
    trigger_size: int | None = None
    label: str = ""
    #: Swallow the sender's FIN instead of forwarding it (forging its ACK),
    #: leaving the far side with a half-open connection — the Finding 1
    #: trick that postpones 'device offline' until the device reconnects.
    suppress_close: bool = False

    armed: bool = True
    triggered_at: float | None = None
    released_at: float | None = None
    end_reason: str | None = None
    flow: FlowKey | None = None
    #: Open obs span covering trigger..release (None when tracing is off).
    obs_span: object | None = None
    queue: list[HeldPacket] = field(default_factory=list)
    forged_acks: int = 0
    #: Invoked (with the hold) the moment the trigger message is captured.
    on_triggered: Callable[["Hold"], None] | None = None
    #: True while this hold is counted as a scheduler quiescence blocker
    #: (armed holds disable batch-stepping until released or cancelled).
    quiesce_blocking: bool = field(default=False, repr=False)

    @property
    def active(self) -> bool:
        return self.armed and self.released_at is None

    @property
    def holding(self) -> bool:
        return self.triggered_at is not None and self.released_at is None

    @property
    def held_count(self) -> int:
        return len(self.queue)

    def current_delay(self, now: float) -> float:
        return now - self.triggered_at if self.triggered_at is not None else 0.0

    def matches_packet(self, packet: IpPacket) -> bool:
        if self.direction == UPLINK:
            if packet.src_ip != self.device_ip:
                return False
            return self.server_ip is None or packet.dst_ip == self.server_ip
        if packet.dst_ip != self.device_ip:
            return False
        return self.server_ip is None or packet.src_ip == self.server_ip


class _FlowTracker:
    """Per-flow cleartext sequence bookkeeping for ACK forging."""

    def __init__(self, key: FlowKey) -> None:
        self.key = key
        self.nxt: dict[str, int] = {}  # sender ip -> next seq it will use
        self.acked: dict[str, int] = {}  # acker ip -> highest ack it sent
        self.first_seen: float | None = None
        self.closed = False

    def observe(self, sender_ip: str, segment: TcpSegment) -> None:
        self.nxt[sender_ip] = seq_add(segment.seq, segment.seq_space)
        if segment.ack_flag:
            prior = self.acked.get(sender_ip)
            if prior is None or seq_lt(prior, segment.ack):
                self.acked[sender_ip] = segment.ack


class TcpHijacker:
    """Transparent TCP interceptor with hold/forge/release capabilities."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.sim: "Simulator" = host.sim
        host.foreign_ip_handler = self._on_foreign_ip
        self.flows: dict[FlowKey, _FlowTracker] = {}
        self.holds: list[Hold] = []
        self.flow_events: list[FlowEvent] = []
        self.on_flow_event: list[Callable[[FlowEvent], None]] = []
        #: (src_ip, dst_ip) -> when we last forwarded payload bytes that way;
        #: for the uplink this is the last instant the server heard the
        #: device, the anchor of the liveness-timeout prediction.
        self.last_payload_forwarded: dict[tuple[str, str], float] = {}
        self.stats = {
            "forwarded": 0,
            "held": 0,
            "forged_acks": 0,
            "released": 0,
            "forward_retries": 0,
        }

    # ------------------------------------------------------------- hold API

    def hold_events(
        self,
        device_ip: str,
        server_ip: str | None = None,
        trigger_size: int | None = None,
        label: str = "",
    ) -> Hold:
        """Arm an e-Delay: hold device->server data from the trigger on."""
        return self._arm(UPLINK, device_ip, server_ip, trigger_size, label)

    def hold_commands(
        self,
        device_ip: str,
        server_ip: str | None = None,
        trigger_size: int | None = None,
        label: str = "",
    ) -> Hold:
        """Arm a c-Delay: hold server->device data from the trigger on."""
        return self._arm(DOWNLINK, device_ip, server_ip, trigger_size, label)

    def _arm(
        self,
        direction: str,
        device_ip: str,
        server_ip: str | None,
        trigger_size: int | None,
        label: str,
    ) -> Hold:
        hold = Hold(
            hold_id=next(_hold_ids),
            device_ip=device_ip,
            direction=direction,
            server_ip=server_ip,
            trigger_size=trigger_size,
            label=label,
        )
        # An armed hold is an attacker window: the scheduler must not
        # batch-step across it, so it counts as a quiescence blocker for
        # its whole armed..released/cancelled lifetime.
        self.sim.block_quiescence()
        hold.quiesce_blocking = True
        self.holds.append(hold)
        return hold

    def _unblock_quiescence(self, hold: Hold) -> None:
        if hold.quiesce_blocking:
            hold.quiesce_blocking = False
            self.sim.unblock_quiescence()

    def release(self, hold: Hold, reason: str = "released") -> None:
        """Flush held packets in original order and resume pass-through."""
        if hold.released_at is not None:
            return
        self._unblock_quiescence(hold)
        hold.released_at = self.sim.now
        hold.end_reason = reason
        self.stats["released"] += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("attack", "holds_released", reason=reason).inc()
            if hold.obs_span is not None:
                obs.tracer.end_span(
                    hold.obs_span,
                    reason=reason,
                    held_count=hold.held_count,
                    forged_acks=hold.forged_acks,
                )
        inv = self.sim.invariants
        if inv is not None and hold.queue:
            flow = hold.flow.label() if hold.flow is not None else hold.label
            inv.on_hold_release(flow, [held.ts for held in hold.queue])
        for held in hold.queue:
            self._forward(held.packet)

    def cancel(self, hold: Hold) -> None:
        """Disarm an untriggered hold (no packets were delayed)."""
        if hold.triggered_at is not None:
            self.release(hold, reason="cancelled")
        else:
            self._unblock_quiescence(hold)
            hold.armed = False
            hold.end_reason = "cancelled"

    # ----------------------------------------------------------- packet path

    def _on_foreign_ip(self, packet: IpPacket, frame: EthernetFrame) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            self._forward(packet)
            return
        tracker = self._track(packet, segment)
        self._note_lifecycle(packet, segment, tracker)

        if segment.payload_size > 0 or segment.fin:
            hold = self._matching_hold(packet, segment)
            if hold is not None:
                if segment.fin:
                    if hold.suppress_close:
                        # Terminate the sender's side locally: ACK its FIN
                        # ourselves, deliver the held data, and leave the
                        # receiver's connection half-open.
                        self._forge_ack(packet, segment, self._track(packet, segment), hold)
                        self.release(hold, reason="close-suppressed")
                        return
                    # The session is dying (a timeout fired somewhere):
                    # flush in order so TLS stays consistent, then step aside.
                    hold.queue.append(HeldPacket(self.sim.now, packet))
                    self.release(hold, reason="session-closed")
                    return
                hold.queue.append(HeldPacket(self.sim.now, packet))
                self.stats["held"] += 1
                self._forge_ack(packet, segment, tracker, hold)
                return
        if segment.rst:
            self._end_holds_on_flow(tracker.key, reason="reset")
        self._forward(packet)

    def _matching_hold(self, packet: IpPacket, segment: TcpSegment) -> Hold | None:
        for hold in self.holds:
            if not hold.active or not hold.matches_packet(packet):
                continue
            key = self._flow_key(packet, segment)
            if hold.triggered_at is None:
                if segment.fin:
                    continue  # never trigger on a bare close
                if hold.trigger_size is not None and segment.payload_size != hold.trigger_size:
                    continue
                hold.triggered_at = self.sim.now
                hold.flow = key
                obs = self.sim.obs
                if obs.enabled:
                    # Recorded against the *flow* only: the hijacker cannot
                    # see msg_ids inside TLS.  link_hold_spans() stitches
                    # this orphan into the message's trace afterwards.
                    hold.obs_span = obs.tracer.start_span(
                        "attack",
                        f"hold:{hold.label or hold.direction}",
                        new_trace=True,
                        flow=key.label(),
                        direction=hold.direction,
                        hold_id=hold.hold_id,
                    )
                if hold.on_triggered is not None:
                    hold.on_triggered(hold)
                return hold
            if hold.flow == key:
                return hold
        return None

    # --------------------------------------------------------------- helpers

    @staticmethod
    def _flow_key(packet: IpPacket, segment: TcpSegment) -> FlowKey:
        return FlowKey.of(packet.src_ip, segment.src_port, packet.dst_ip, segment.dst_port)

    def _track(self, packet: IpPacket, segment: TcpSegment) -> _FlowTracker:
        key = self._flow_key(packet, segment)
        tracker = self.flows.get(key)
        if tracker is None:
            tracker = _FlowTracker(key)
            tracker.first_seen = self.sim.now
            self.flows[key] = tracker
        tracker.observe(packet.src_ip, segment)
        return tracker

    def _note_lifecycle(self, packet: IpPacket, segment: TcpSegment, tracker: _FlowTracker) -> None:
        kind: str | None = None
        if segment.syn:
            kind = EVENT_SYN
        elif segment.rst:
            kind = EVENT_RST
            tracker.closed = True
        elif segment.fin:
            kind = EVENT_FIN
            tracker.closed = True
        if kind is None:
            return
        event = FlowEvent(ts=self.sim.now, flow=tracker.key, kind=kind, from_ip=packet.src_ip)
        self.flow_events.append(event)
        for hook in list(self.on_flow_event):
            hook(event)

    def _end_holds_on_flow(self, key: FlowKey, reason: str) -> None:
        for hold in self.holds:
            if hold.holding and hold.flow == key:
                self.release(hold, reason=reason)

    def _forge_ack(
        self, packet: IpPacket, segment: TcpSegment, tracker: _FlowTracker, hold: Hold
    ) -> None:
        """Acknowledge a held segment on behalf of its real receiver.

        Everything in this forgery is cleartext TCP state the attacker
        observed on the wire; no TLS key material is involved.
        """
        ack = TcpSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=tracker.nxt.get(packet.dst_ip, 0),
            ack=seq_add(segment.seq, segment.seq_space),
            flags=frozenset({"ACK"}),
        )
        hold.forged_acks += 1
        self.stats["forged_acks"] += 1
        if self.sim.obs.enabled:
            self.sim.obs.registry.counter("attack", "forged_acks").inc()
        self.host.send_ip(IpPacket(src_ip=packet.dst_ip, dst_ip=packet.src_ip, payload=ack))

    #: Shepherded forwarding: the attacker's interposition adds a second
    #: lossy LAN crossing to every packet, and forged ACKs convince senders
    #: their held data arrived — so neither endpoint can be relied on to
    #: repair a drop on the attacker->receiver hop.  A competent MITM relay
    #: therefore re-forwards any data segment whose genuine cumulative ACK
    #: it has not observed, on a timer much shorter than the endpoints' RTO.
    FORWARD_RETRY_INTERVAL = 0.5
    FORWARD_MAX_RETRIES = 4

    def _forward(self, packet: IpPacket) -> None:
        self.stats["forwarded"] += 1
        segment = packet.payload
        if isinstance(segment, TcpSegment) and segment.payload_size > 0:
            self.last_payload_forwarded[(packet.src_ip, packet.dst_ip)] = self.sim.now
            self.sim.schedule(
                self.FORWARD_RETRY_INTERVAL,
                self._check_forward,
                self._flow_key(packet, segment),
                seq_add(segment.seq, segment.seq_space),
                packet,
                0,
                label="hijack-shepherd",
            )
        self.host.send_ip(packet)

    def _check_forward(
        self, flow: FlowKey, end_seq: int, packet: IpPacket, tries: int
    ) -> None:
        tracker = self.flows.get(flow)
        if tracker is not None:
            acked = tracker.acked.get(packet.dst_ip)
            if acked is not None and seq_leq(end_seq, acked):
                return  # the receiver's own ACK covered it
        if tries >= self.FORWARD_MAX_RETRIES:
            return
        self.stats["forward_retries"] += 1
        self.host.send_ip(packet)
        self.sim.schedule(
            self.FORWARD_RETRY_INTERVAL,
            self._check_forward,
            flow,
            end_seq,
            packet,
            tries + 1,
            label="hijack-shepherd",
        )

    def last_delivery_from(self, src_ip: str, dst_ip: str | None = None) -> float | None:
        """When the far side last actually received data from ``src_ip``."""
        times = [
            ts
            for (s, d), ts in self.last_payload_forwarded.items()
            if s == src_ip and (dst_ip is None or d == dst_ip)
        ]
        return max(times) if times else None

    # ------------------------------------------------------------ inspection

    def events_on_flow(self, flow: FlowKey, since: float = 0.0) -> list[FlowEvent]:
        return [e for e in self.flow_events if e.flow == flow and e.ts >= since]

    def close_events_involving(self, device_ip: str, since: float = 0.0) -> list[FlowEvent]:
        return [
            e
            for e in self.flow_events
            if e.kind in (EVENT_FIN, EVENT_RST)
            and e.ts >= since
            and e.flow.involves_ip(device_ip)
        ]
