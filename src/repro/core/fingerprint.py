"""Traffic fingerprinting: recognising devices from encrypted metadata.

Following the side-channel literature the paper builds on (Section II-C),
recognition uses only what an on-path observer has: the peer's domain name
(reverse-resolved from the server IP), packet lengths, and timing.  The
attacker profiles devices *they own* to build a signature database, then
matches victim traffic against it (Clarification II: profiling a few
popular models covers a large share of deployments).

Works at two granularities:

* **flow level** — which device model owns this TCP session (server
  domain + keep-alive size/period + event-length vocabulary);
* **message level** — which logical message a given data packet carries
  (keep-alive vs a specific child sensor's event on a hub session).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..devices.profiles import Catalogue, CATALOGUE, DeviceProfile
from ..simnet.inet import DnsRegistry
from ..simnet.trace import FlowKey, PacketCapture, PacketMeta
from ..tls.session import RECORD_OVERHEAD

#: Tolerance when matching keep-alive periods (fraction of the period).
PERIOD_TOLERANCE = 0.15


@dataclass(frozen=True)
class TrafficSignature:
    """Wire-observable identity of one device model."""

    label: str
    model: str
    table: int
    server: str
    server_domain: str
    long_live: bool
    ka_period: float | None
    ka_wire_size: int | None
    event_wire_size: int
    kind: str
    #: Hub children share their hub's session fingerprint; only their event
    #: length distinguishes them, so matching requires seeing it.
    is_hub_child: bool = False

    @classmethod
    def from_profile(cls, profile: DeviceProfile, domain: str) -> "TrafficSignature":
        ka_size = None
        if profile.long_live and profile.ka_period is not None:
            ka_size = profile.keepalive_size
        return cls(
            label=profile.label,
            model=profile.model,
            table=profile.table,
            server=profile.server,
            server_domain=domain,
            long_live=profile.long_live,
            ka_period=profile.ka_period if profile.long_live else None,
            ka_wire_size=ka_size,
            event_wire_size=profile.event_size,
            kind=profile.kind,
            is_hub_child=profile.is_hub_child,
        )


@dataclass
class FlowObservation:
    """What the sniffer extracted about one device flow."""

    device_ip: str
    server_ip: str
    server_domain: str | None
    flow: FlowKey | None
    long_live: bool
    ka_period: float | None
    ka_wire_size: int | None
    uplink_sizes: dict[int, int] = field(default_factory=dict)  # size -> count

    def dominant_sizes(self) -> list[int]:
        return sorted(self.uplink_sizes, key=lambda s: -self.uplink_sizes[s])


@dataclass(frozen=True)
class Match:
    signature: TrafficSignature
    score: float
    reasons: tuple[str, ...]


def extract_observation(
    capture: PacketCapture,
    device_ip: str,
    dns: DnsRegistry | None = None,
    min_ka_samples: int = 3,
) -> list[FlowObservation]:
    """Summarise every flow of ``device_ip`` from a capture window."""
    observations: list[FlowObservation] = []
    for flow, _frames in capture.flows().items():
        if not flow.involves_ip(device_ip):
            continue
        metas = capture.flow_metadata(flow, device_ip)
        uplink = [m for m in metas if m.from_device]
        if not uplink:
            continue
        sizes: dict[int, int] = {}
        for meta in uplink:
            sizes[meta.size] = sizes.get(meta.size, 0) + 1
        ka_size, ka_period = _detect_keepalive(uplink, min_ka_samples)
        server_ip = flow.other_ip(device_ip)
        observations.append(
            FlowObservation(
                device_ip=device_ip,
                server_ip=server_ip,
                server_domain=dns.reverse(server_ip) if dns is not None else None,
                flow=flow,
                long_live=ka_size is not None,
                ka_period=ka_period,
                ka_wire_size=ka_size,
                uplink_sizes=sizes,
            )
        )
    return observations


def _detect_keepalive(
    uplink: list[PacketMeta], min_samples: int
) -> tuple[int | None, float | None]:
    """Find the size repeating at the most regular interval (the keep-alive).

    Keep-alives dominate an idle capture: same length, metronomic spacing.
    """
    by_size: dict[int, list[float]] = {}
    for meta in uplink:
        by_size.setdefault(meta.size, []).append(meta.ts)
    best: tuple[float, int, float] | None = None  # (-score, size, period)
    for size, times in by_size.items():
        if len(times) < min_samples:
            continue
        times.sort()
        gaps = [b - a for a, b in zip(times, times[1:]) if b - a > 1e-6]
        if not gaps:
            continue
        period = sorted(gaps)[len(gaps) // 2]  # median gap
        if period <= 0:
            continue
        # On-idle sessions stretch an occasional gap when normal traffic
        # resets the timer; a keep-alive is a size whose gaps *mostly*
        # cluster at the median, not one with zero spread.
        near = sum(1 for g in gaps if abs(g - period) <= 0.2 * period)
        regular_fraction = near / len(gaps)
        if regular_fraction >= 0.6 and (best is None or -regular_fraction < best[0]):
            best = (-regular_fraction, size, period)
    if best is None:
        return None, None
    return best[1], best[2]


class FingerprintDatabase:
    """Signature store plus the matching logic."""

    def __init__(self, signatures: Iterable[TrafficSignature]) -> None:
        self.signatures = list(signatures)

    @classmethod
    def from_catalogue(
        cls,
        catalogue: Catalogue | None = None,
        domains: dict[str, str] | None = None,
    ) -> "FingerprintDatabase":
        """Build the attacker's pre-computed database (a one-time effort)."""
        from ..testbed import VENDOR_DOMAINS

        catalogue = catalogue or CATALOGUE
        domains = domains or VENDOR_DOMAINS
        signatures = []
        for profile in catalogue:
            domain = (
                "local" if profile.server == "homekit"
                else domains.get(profile.server, f"{profile.server}.iotcloud.example")
            )
            signatures.append(TrafficSignature.from_profile(profile, domain))
        return cls(signatures)

    # -------------------------------------------------------------- matching

    def match_flow(self, observation: FlowObservation) -> list[Match]:
        """Rank device models by how well they explain one observed flow."""
        matches: list[Match] = []
        for signature in self.signatures:
            score = 0.0
            reasons: list[str] = []
            if (
                signature.is_hub_child
                and signature.event_wire_size not in observation.uplink_sizes
            ):
                # A child is only recognisable by its event length.
                continue
            if observation.server_domain is not None:
                if observation.server_domain == signature.server_domain:
                    score += 2.0
                    reasons.append("server domain")
                else:
                    continue  # wrong vendor: hard reject
            if signature.long_live != observation.long_live:
                continue
            if (
                signature.ka_wire_size is not None
                and observation.ka_wire_size == signature.ka_wire_size
            ):
                score += 1.5
                reasons.append("keep-alive size")
            if (
                signature.ka_period is not None
                and observation.ka_period is not None
                and abs(observation.ka_period - signature.ka_period)
                <= PERIOD_TOLERANCE * signature.ka_period
            ):
                score += 1.5
                reasons.append("keep-alive period")
            if signature.event_wire_size in observation.uplink_sizes:
                score += 1.0
                reasons.append("event size")
            if score > 0:
                matches.append(Match(signature, score, tuple(reasons)))
        matches.sort(key=lambda m: (-m.score, m.signature.label))
        return matches

    def classify_size(self, server_domain: str | None, size: int) -> list[TrafficSignature]:
        """Which devices' events a packet of ``size`` could carry.

        On a hub session this disambiguates the children: a 986-byte record
        on the Ring flow is the contact sensor, not the keypad.
        """
        out = []
        for signature in self.signatures:
            if server_domain is not None and signature.server_domain != server_domain:
                continue
            if signature.event_wire_size == size:
                out.append(signature)
        return out

    def signature_of(self, label: str, table: int = 1) -> TrafficSignature:
        for signature in self.signatures:
            if signature.label == label and signature.table == table:
                return signature
        raise LookupError(f"no signature for {label!r} table {table}")


def plaintext_size(wire_size: int) -> int:
    """Convert an observed record size back to its plaintext length."""
    return max(wire_size - RECORD_OVERHEAD, 0)
