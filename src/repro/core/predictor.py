"""Timeout prediction: Section IV-B's three-parameter behaviour model.

Given a device's profiled timeout behaviour, the predictor computes *when*
the session will die if a delay starts now — which is what lets the
attacker "achieve the maximum delay without causing timeout" by releasing
the held messages shortly before that instant (the paper releases 2 s
early and reports 100% avoidance in the Section VI-C verification test).

Timeout causes, for an **event hold** (uplink direction blocked):

* the device's own event-ack timeout, anchored at the hold trigger;
* the server's silence tolerance ``keep-alive period + grace``, anchored
  at the last byte the server actually received;
* the device's wait for its (also held) keep-alive's reply: next keep-alive
  send time plus ``grace``.

For a **command hold** (downlink blocked): the server's command-response
timeout, and the device's keep-alive-reply wait (the replies are stuck
behind the held command).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..appproto.keepalive import FIXED, ON_IDLE
from ..devices.profiles import DeviceProfile

INF = math.inf

# Causes reported with a prediction.
CAUSE_EVENT_ACK = "event-ack-timeout"
CAUSE_COMMAND_RESPONSE = "command-response-timeout"
CAUSE_SERVER_LIVENESS = "server-liveness"
CAUSE_KEEPALIVE_REPLY = "keepalive-reply-timeout"
CAUSE_NONE = "no-timeout"


@dataclass
class TimeoutBehavior:
    """A device's timeout behaviour as the attacker models it.

    Produced either from the catalogue (ground truth) or from
    :class:`~repro.core.profiler.TimeoutProfiler` measurements; the
    verification experiment checks the two agree.
    """

    long_live: bool = True
    ka_period: float | None = None
    ka_strategy: str | None = None  # FIXED or ON_IDLE
    ka_timeout: float | None = None  # the grace G
    event_timeout: float | None = None  # None = no timeout observed (∞)
    command_timeout: float | None = None
    keepalive_size: int | None = None
    event_size: int | None = None
    command_size: int | None = None

    @classmethod
    def from_profile(cls, profile: DeviceProfile) -> "TimeoutBehavior":
        return cls(
            long_live=profile.long_live,
            ka_period=profile.ka_period,
            ka_strategy=profile.ka_strategy if profile.ka_period is not None else None,
            ka_timeout=profile.ka_grace,
            event_timeout=profile.event_ack_timeout,
            command_timeout=profile.command_response_timeout,
            keepalive_size=profile.keepalive_size,
            event_size=profile.event_size,
            command_size=profile.command_size,
        )

    # ------------------------------------------------------------- windows

    def event_delay_window(self) -> tuple[float, float]:
        """Achievable e-Delay (worst phase, best phase)."""
        caps = [self.event_timeout] if self.event_timeout is not None else []
        if not self.long_live or self.ka_period is None or self.ka_timeout is None:
            bound = min(caps) if caps else INF
            return (bound, bound)
        lo, hi = self.ka_timeout, self.ka_period + self.ka_timeout
        if caps:
            cap = min(caps)
            return (min(lo, cap), min(hi, cap))
        return (lo, hi)

    def command_delay_window(self) -> tuple[float, float]:
        caps = [self.command_timeout] if self.command_timeout is not None else []
        if self.ka_period is None or self.ka_timeout is None:
            bound = min(caps) if caps else INF
            return (bound, bound)
        lo, hi = self.ka_timeout, self.ka_period + self.ka_timeout
        if caps:
            cap = min(caps)
            return (min(lo, cap), min(hi, cap))
        return (lo, hi)


@dataclass(frozen=True)
class Prediction:
    """When the session will die and why (``at`` may be ``inf``)."""

    at: float
    cause: str

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.at)


class TimeoutPredictor:
    """Predicts timeout instants from a behaviour model plus wire context."""

    def __init__(self, behavior: TimeoutBehavior, margin: float = 2.0) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.behavior = behavior
        self.margin = margin

    # ----------------------------------------------------------- event hold

    def event_hold_timeout(
        self,
        hold_start: float,
        last_delivered: float | None = None,
        next_ka_send: float | None = None,
    ) -> Prediction:
        """First timeout if uplink data is held from ``hold_start``.

        ``last_delivered`` — when the server last received device bytes
        (defaults to ``hold_start``, the conservative assumption).
        ``next_ka_send`` — the device's next keep-alive send time; derived
        from the strategy when not observed directly.
        """
        b = self.behavior
        candidates: list[Prediction] = []
        if b.event_timeout is not None:
            candidates.append(Prediction(hold_start + b.event_timeout, CAUSE_EVENT_ACK))
        if b.long_live and b.ka_period is not None and b.ka_timeout is not None:
            if last_delivered is None:
                # Phase unknown: assume the server is one full period stale,
                # so only the grace window is certainly safe.
                anchor = hold_start - b.ka_period
            else:
                anchor = last_delivered
            candidates.append(
                Prediction(anchor + b.ka_period + b.ka_timeout, CAUSE_SERVER_LIVENESS)
            )
            ka_send = self._next_ka_send(hold_start, next_ka_send)
            if ka_send is not None:
                candidates.append(
                    Prediction(ka_send + b.ka_timeout, CAUSE_KEEPALIVE_REPLY)
                )
        if not candidates:
            return Prediction(INF, CAUSE_NONE)
        return min(candidates, key=lambda p: p.at)

    def _next_ka_send(self, hold_start: float, observed_next: float | None) -> float | None:
        b = self.behavior
        if b.ka_period is None:
            return None
        if observed_next is not None:
            return observed_next
        if b.ka_strategy == ON_IDLE:
            # The held message itself reset the device's keep-alive timer.
            return hold_start + b.ka_period
        # FIXED schedule unknown without observation: worst case is a full
        # period away, best case immediate; be conservative.
        return hold_start

    # --------------------------------------------------------- command hold

    def command_hold_timeout(
        self,
        hold_start: float,
        next_ka_send: float | None = None,
    ) -> Prediction:
        """First timeout if downlink data is held from ``hold_start``."""
        b = self.behavior
        candidates: list[Prediction] = []
        if b.command_timeout is not None:
            candidates.append(
                Prediction(hold_start + b.command_timeout, CAUSE_COMMAND_RESPONSE)
            )
        if b.long_live and b.ka_period is not None and b.ka_timeout is not None:
            ka_send = self._next_ka_send(hold_start, next_ka_send)
            if ka_send is not None:
                candidates.append(Prediction(ka_send + b.ka_timeout, CAUSE_KEEPALIVE_REPLY))
        if not candidates:
            return Prediction(INF, CAUSE_NONE)
        return min(candidates, key=lambda p: p.at)

    # ------------------------------------------------------------ max delay

    def max_safe_event_delay(
        self,
        hold_start: float,
        last_delivered: float | None = None,
        next_ka_send: float | None = None,
    ) -> float:
        """Longest delay that still avoids every timeout (margin applied)."""
        prediction = self.event_hold_timeout(hold_start, last_delivered, next_ka_send)
        if not prediction.bounded:
            return INF
        return max(prediction.at - self.margin - hold_start, 0.0)

    def max_safe_command_delay(
        self, hold_start: float, next_ka_send: float | None = None
    ) -> float:
        prediction = self.command_hold_timeout(hold_start, next_ka_send)
        if not prediction.bounded:
            return INF
        return max(prediction.at - self.margin - hold_start, 0.0)
