"""The attacker facade: one compromised WiFi device, full kill chain.

Bundles the pieces in the order the paper uses them (Section IV-C summary):

1. **profile** popular devices offline (a one-time effort — here:
   :class:`~repro.core.profiler.TimeoutProfiler`, or the pre-computed
   :class:`~repro.core.fingerprint.FingerprintDatabase`);
2. **sniff** the victim network and recognise devices from traffic
   metadata;
3. **hijack** the chosen sessions via ARP spoofing and apply the e-Delay /
   c-Delay primitives.

The facade drives the simulation clock for its own reconnaissance steps
(scanning, surveying), mirroring how attack scripts run in wall-clock time.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..simnet.host import Host
from ..simnet.inet import DnsRegistry
from ..simnet.trace import PacketCapture
from .arp_spoofer import ArpSpoofer
from .fingerprint import FingerprintDatabase, FlowObservation, Match, extract_observation
from .hijacker import TcpHijacker
from .predictor import TimeoutBehavior
from .primitives import CDelay, DelayOperation, EDelay
from .profiler import TimeoutProfiler

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import SmartHomeTestbed


class PhantomDelayAttacker:
    """Everything a single compromised LAN device lets the attacker do."""

    def __init__(
        self,
        host: Host,
        gateway_ip: str,
        dns: DnsRegistry | None = None,
        database: FingerprintDatabase | None = None,
        margin: float = 2.0,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.gateway_ip = gateway_ip
        self.dns = dns
        self.database = database or FingerprintDatabase.from_catalogue()
        self.margin = margin
        self.capture = PacketCapture(self.sim)
        self.capture.attach(host)
        self.spoofer = ArpSpoofer(host)
        self.hijacker = TcpHijacker(host)
        self._interposed: set[tuple[str, str]] = set()

    @classmethod
    def deploy(cls, testbed: "SmartHomeTestbed", margin: float = 2.0) -> "PhantomDelayAttacker":
        """Drop the attacker into a testbed home (a hijacked WiFi device)."""
        host = testbed.add_attacker_host()
        return cls(
            host,
            gateway_ip=testbed.router.ip,
            dns=testbed.internet.dns,
            database=FingerprintDatabase.from_catalogue(testbed.catalogue),
            margin=margin,
        )

    # -------------------------------------------------------- reconnaissance

    def discover_mac(self, ip: str, wait: float = 0.5) -> str | None:
        """Nmap-style ARP discovery of one LAN address."""
        cached = self.host.arp.lookup(ip)
        if cached is not None:
            return cached
        self.host.arp.mark_requested(ip)
        self.host._send_arp_request(ip)
        self.sim.run(wait)
        return self.host.arp.lookup(ip)

    def scan(self, ips: list[str], wait: float = 0.5) -> dict[str, str]:
        """ARP-scan a list of candidate addresses; returns responders."""
        for ip in ips:
            if self.host.arp.lookup(ip) is None:
                self.host.arp.mark_requested(ip)
                self.host._send_arp_request(ip)
        self.sim.run(wait)
        return {ip: mac for ip in ips if (mac := self.host.arp.lookup(ip)) is not None}

    def survey(self, window: float, device_ips: list[str]) -> dict[str, list[Match]]:
        """Sniff for ``window`` seconds and recognise the given devices.

        Requires only promiscuous capture — no hijack yet.  Returns ranked
        fingerprint matches per device IP.
        """
        self.capture.clear()
        self.sim.run(window)
        results: dict[str, list[Match]] = {}
        for ip in device_ips:
            matches: list[Match] = []
            for observation in extract_observation(self.capture, ip, self.dns):
                matches.extend(self.database.match_flow(observation))
            matches.sort(key=lambda m: -m.score)
            results[ip] = matches
        return results

    def observe_flows(self, device_ip: str) -> list[FlowObservation]:
        return extract_observation(self.capture, device_ip, self.dns)

    # --------------------------------------------------------------- hijack

    def interpose(self, device_ip: str, peer_ip: str | None = None) -> None:
        """ARP-spoof ourselves between a device and its peer.

        ``peer_ip`` defaults to the home gateway (cloud devices); pass the
        local server's address to attack HomeKit pairs.
        """
        peer_ip = peer_ip or self.gateway_ip
        key = (device_ip, peer_ip)
        if key in self._interposed:
            return
        device_mac = self.discover_mac(device_ip)
        peer_mac = self.discover_mac(peer_ip)
        if device_mac is None or peer_mac is None:
            raise RuntimeError(
                f"cannot resolve victim MACs: {device_ip}={device_mac} {peer_ip}={peer_mac}"
            )
        self.spoofer.poison_pair(device_ip, device_mac, peer_ip, peer_mac)
        self.spoofer.start()
        self._interposed.add(key)
        # Give the poison a moment to take effect.
        self.sim.run(0.2)

    # ------------------------------------------------------------ primitives

    def e_delay(
        self,
        device_ip: str,
        behavior: TimeoutBehavior,
        server_ip: str | None = None,
    ) -> EDelay:
        """Build the event-delay primitive for an interposed device."""
        return EDelay(
            self.sim, self.hijacker, behavior, device_ip, server_ip, margin=self.margin
        )

    def c_delay(
        self,
        device_ip: str,
        behavior: TimeoutBehavior,
        server_ip: str | None = None,
    ) -> CDelay:
        return CDelay(
            self.sim, self.hijacker, behavior, device_ip, server_ip, margin=self.margin
        )

    def delay_next_event(
        self,
        device_ip: str,
        behavior: TimeoutBehavior,
        duration: float | None = None,
        trigger_size: int | None = None,
        on_release: Callable[[DelayOperation], None] | None = None,
        clamp: bool = True,
        suppress_close: bool = False,
    ) -> DelayOperation:
        """Convenience: arm a one-shot e-Delay."""
        return self.e_delay(device_ip, behavior).arm(
            duration=duration,
            trigger_size=trigger_size,
            on_release=on_release,
            clamp=clamp,
            suppress_close=suppress_close,
        )

    def delay_next_command(
        self,
        device_ip: str,
        behavior: TimeoutBehavior,
        duration: float | None = None,
        trigger_size: int | None = None,
        on_release: Callable[[DelayOperation], None] | None = None,
    ) -> DelayOperation:
        """Convenience: arm a one-shot c-Delay."""
        return self.c_delay(device_ip, behavior).arm(
            duration=duration, trigger_size=trigger_size, on_release=on_release
        )

    # -------------------------------------------------------------- profiling

    def profiler_for(
        self,
        device_ip: str,
        trigger_event: Callable[[], None],
        trigger_command: Callable[[], None] | None = None,
    ) -> TimeoutProfiler:
        """Profile a device the attacker owns (the offline step)."""
        return TimeoutProfiler(
            sim=self.sim,
            capture=self.capture,
            hijacker=self.hijacker,
            device_ip=device_ip,
            trigger_event=trigger_event,
            trigger_command=trigger_command,
            dns=self.dns,
        )
