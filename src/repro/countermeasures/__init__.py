"""Section VII countermeasures: ACK timeouts and timestamp checking."""

from .ack_timeout import (
    harden_profile,
    keepalive_traffic_rate,
    residual_event_window,
    sweep_ack_timeout,
    sweep_keepalive_period,
)
from .ack_timeout import battery_life_days
from .remediation import Remediation, RemediationPolicy
from .timestamp_check import (
    ALARM_DELAYED_MESSAGE,
    DelayAnomalyDetector,
    DelayDetection,
)

__all__ = [
    "ALARM_DELAYED_MESSAGE",
    "DelayAnomalyDetector",
    "DelayDetection",
    "Remediation",
    "RemediationPolicy",
    "battery_life_days",
    "harden_profile",
    "keepalive_traffic_rate",
    "residual_event_window",
    "sweep_ack_timeout",
    "sweep_keepalive_period",
]
