"""Countermeasure B (Section VII-B): timestamp checking.

Messages carry the device's generation timestamp; the receiver refuses to
*act on* (trigger automations from) events older than a freshness window.
The paper's analysis, which the experiments reproduce:

* **stops** spurious execution caused by a *delayed trigger* — the stale
  trigger is refused;
* **does not stop** state-update/action delay attacks (the event is simply
  late, acting on it late is all a server can do), nor erroneous execution
  via *delayed condition events* — at trigger time the condition looks
  satisfied and the action (unlocking the door for the burglar of Case 8)
  is issued before any remediation could matter.

The mechanism itself lives in
:class:`repro.automation.engine.AutomationEngine` (``trigger_max_age``) and
is switched on per testbed via ``trigger_timestamp_window``; this module
adds the attacker-side freshness scenario used by the evaluation, plus a
detection-only variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..alarms import AlarmLog
from ..appproto.messages import IoTMessage
from ..cloud.endpoint import EndpointServer

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

ALARM_DELAYED_MESSAGE = "delayed-message-detected"


@dataclass
class DelayDetection:
    ts: float
    device_id: str
    event_name: str
    age: float


@dataclass
class DelayAnomalyDetector:
    """Detection-only timestamp checking at an endpoint server.

    Rather than refusing stale events, raise an alarm so the household
    learns an on-path delay attack is in progress.  This is the natural
    'remedial action' extension the paper hints at; the countermeasures
    bench shows it catches every delay beyond its threshold — at the price
    of false alarms whenever benign latency exceeds it.
    """

    sim: "Simulator"
    alarm_log: AlarmLog
    threshold: float
    source: str = "delay-detector"
    detections: list[DelayDetection] = field(default_factory=list)

    def attach(self, endpoint: EndpointServer) -> None:
        endpoint.event_hooks.append(self._on_event)

    def _on_event(self, source_id: str, message: IoTMessage, _session) -> None:
        age = self.sim.now - message.device_time
        if age > self.threshold:
            self.detections.append(
                DelayDetection(
                    ts=self.sim.now,
                    device_id=source_id,
                    event_name=message.name,
                    age=age,
                )
            )
            self.alarm_log.raise_alarm(
                ALARM_DELAYED_MESSAGE,
                self.source,
                f"event '{message.name}' from {source_id} arrived {age:.1f}s stale",
            )
