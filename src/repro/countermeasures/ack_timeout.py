"""Countermeasure A (Section VII-A): message ACKs with short timeouts.

Shortening the application-layer acknowledgement timeout (and/or the
keep-alive interval) directly shrinks the attack window — Table I shows the
window is governed by exactly these parameters.  The cost is traffic and
energy: the LIFX bulb's sub-2 s keep-alive shows where that road ends
(paper: user-reported ~150 MB/hour per bulb).

This module provides profile hardening plus the cost model the
countermeasure bench sweeps.
"""

from __future__ import annotations

from dataclasses import replace

from ..devices.profiles import DeviceProfile

#: Wire overhead below the TLS record: Ethernet + IP + TCP headers, and the
#: pure TCP ACK coming back.
_FRAME_OVERHEAD = 14 + 20 + 20
_ACK_FRAME = 14 + 20 + 20


def harden_profile(
    profile: DeviceProfile,
    event_ack_timeout: float | None = None,
    command_response_timeout: float | None = None,
    ka_period: float | None = None,
    ka_grace: float | None = None,
) -> DeviceProfile:
    """A copy of ``profile`` with the defence's shortened timeouts applied.

    Only the supplied parameters change; pass e.g. ``event_ack_timeout=5``
    to mandate acknowledgement of events within 5 s.
    """
    changes: dict = {}
    if event_ack_timeout is not None:
        changes["event_ack_timeout"] = event_ack_timeout
        changes["event_acked"] = True
    if command_response_timeout is not None:
        changes["command_response_timeout"] = command_response_timeout
    if ka_period is not None:
        changes["ka_period"] = ka_period
    if ka_grace is not None:
        changes["ka_grace"] = ka_grace
    return replace(profile, **changes)


def residual_event_window(profile: DeviceProfile, event_ack_timeout: float) -> tuple[float, float]:
    """Attack window left after mandating an event-ack timeout."""
    return harden_profile(profile, event_ack_timeout=event_ack_timeout).event_delay_window()


def keepalive_traffic_rate(profile: DeviceProfile, ka_period: float | None = None) -> float:
    """Keep-alive bytes per hour on the wire for one device.

    Counts both directions (request + reply) plus link/IP/TCP framing and
    the transport ACKs — the traffic a home router actually carries.
    """
    period = ka_period if ka_period is not None else profile.ka_period
    if period is None or period <= 0:
        return 0.0
    exchanges_per_hour = 3600.0 / period
    request = profile.keepalive_size + _FRAME_OVERHEAD + _ACK_FRAME
    reply = profile.keepalive_size + _FRAME_OVERHEAD + _ACK_FRAME
    return exchanges_per_hour * (request + reply)


def sweep_ack_timeout(
    profile: DeviceProfile, timeouts: list[float]
) -> list[tuple[float, tuple[float, float]]]:
    """(timeout, residual window) for each candidate ACK timeout."""
    return [(t, residual_event_window(profile, t)) for t in timeouts]


# ---------------------------------------------------------------------------
# Energy model: the Section VII-A limitation for battery devices.
#
# "for battery-based devices, this countermeasure is not practical."
# A WiFi radio burns roughly three orders of magnitude more while
# transmitting/receiving than asleep; every keep-alive exchange forces a
# wake + TX + RX-listen window.

#: Wake/TX/RX energy per keep-alive exchange, millijoules.  Representative
#: of a low-power WiFi SoC (ESP32-class: ~250 mA TX @3.3 V for ~25 ms plus
#: wake overhead).
ENERGY_PER_EXCHANGE_MJ = 30.0
#: Baseline sleep draw, milliwatts.
SLEEP_POWER_MW = 0.05
#: A compact battery (2x AA lithium), millijoule capacity.
BATTERY_CAPACITY_MJ = 32_400_000.0 / 1000.0 * 1000.0  # 3000 mAh * 3 V -> ~32.4 kJ


def battery_life_days(profile: DeviceProfile, ka_period: float | None = None) -> float:
    """Estimated battery life under a given keep-alive interval.

    Only the keep-alive duty cycle varies; event traffic is negligible for
    sensors.  Returns days until a 2xAA-class battery is drained.
    """
    period = ka_period if ka_period is not None else profile.ka_period
    sleep_mj_per_s = SLEEP_POWER_MW / 1000.0 * 1000.0  # mW -> mJ/s
    if period is None or period <= 0:
        power = sleep_mj_per_s
    else:
        power = sleep_mj_per_s + ENERGY_PER_EXCHANGE_MJ / period
    seconds = BATTERY_CAPACITY_MJ / power
    return seconds / 86_400.0


def sweep_keepalive_period(
    profile: DeviceProfile, periods: list[float]
) -> list[tuple[float, tuple[float, float], float]]:
    """(period, residual window, bytes/hour) for each keep-alive period.

    Shortening the period shrinks the window's upper end (the window is
    ``[grace, period + grace]``) while inflating traffic hyperbolically —
    the trade-off of Section VII-A's limitation paragraph.
    """
    rows = []
    for period in periods:
        hardened = harden_profile(profile, ka_period=period)
        rows.append(
            (period, hardened.event_delay_window(), keepalive_traffic_rate(profile, period))
        )
    return rows
