"""Remedial actions: the Section VII-B "what if the server reacts?" analysis.

Timestamp checking can *detect* that a condition event arrived stale; the
natural next step is remediation — re-evaluate rules whose condition just
turned out to have been wrong and undo the damage (re-lock the door).
The paper's verdict, which the experiment reproduces: "the burglar could
have already entered" — remediation bounds the damage window but cannot
prevent it.

The :class:`RemediationPolicy` watches an automation engine: when an event
arrives whose device timestamp *predates* a recent rule firing that used
that device's attribute as its condition, and the stale value contradicts
what the condition required, a compensating command is issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..automation.engine import AutomationEngine
from ..automation.rules import CommandAction, RuleFiring

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Inverse commands for compensation.
COMPENSATIONS: dict[str, str] = {
    "unlock": "lock",
    "lock": "unlock",
    "on": "off",
    "off": "on",
    "open": "close",
    "close": "open",
    "disarm": "arm-away",
}


@dataclass
class Remediation:
    ts: float
    rule_id: str
    compensating_command: str
    target_device: str
    #: How long the spurious state existed before we undid it.
    exposure: float


@dataclass
class RemediationPolicy:
    """Undo actions whose condition turns out to have been stale."""

    sim: "Simulator"
    engine: AutomationEngine
    #: How far back a firing can be compensated.
    lookback: float = 120.0
    remediations: list[Remediation] = field(default_factory=list)
    _installed: bool = False

    def install(self) -> None:
        if self._installed:
            return
        self._installed = True
        original = self.engine.handle_event

        def wrapped(device_id, event_name, device_time, data=None):
            firings = original(device_id, event_name, device_time, data)
            self._check_stale_condition(device_id, event_name, device_time)
            return firings

        self.engine.handle_event = wrapped  # type: ignore[method-assign]

    # ------------------------------------------------------------ internals

    def _check_stale_condition(
        self, device_id: str, event_name: str, device_time: float
    ) -> None:
        if "." not in event_name:
            return
        attribute, value = event_name.split(".", 1)
        for firing in reversed(self.engine.firings):
            if self.sim.now - firing.ts > self.lookback:
                break
            if not firing.action_taken:
                continue
            rule = self._rule_of(firing)
            if rule is None or rule.condition is None:
                continue
            condition = rule.condition
            if condition.device_id != device_id or condition.attribute != attribute:
                continue
            # The event was *generated before* the firing but arrived after,
            # and its value contradicts what the condition required.
            if device_time < firing.ts and value != condition.equals:
                self._compensate(firing, rule, device_time)
                return

    def _rule_of(self, firing: RuleFiring):
        for rule in self.engine.rules:
            if rule.rule_id == firing.rule_id:
                return rule
        return None

    def _compensate(self, firing: RuleFiring, rule, stale_device_time: float) -> None:
        action = rule.action
        if not isinstance(action, CommandAction):
            return
        inverse = COMPENSATIONS.get(action.command)
        if inverse is None:
            return
        self.engine.command_sink(action.device_id, inverse, {})
        self.remediations.append(
            Remediation(
                ts=self.sim.now,
                rule_id=rule.rule_id,
                compensating_command=inverse,
                target_device=action.device_id,
                exposure=self.sim.now - firing.ts,
            )
        )
