"""Experiment E6: the evaluation's three protocol findings.

* **Finding 1 — half-open connections.**  After a device-side timeout the
  cloud keeps the dead session; as long as the device reconnects before
  the old session's liveness window runs out, no 'device offline' alarm is
  ever raised, and the stale connection quietly disappears.
* **Finding 2 — silent event discard.**  Alexa-style integrations drop
  events delayed past ~30 s with no notification, disabling routines
  forever.
* **Finding 3 — unidirectional liveness checking.**  Keep-alives are
  device-initiated; while the attacker holds the uplink the server sends
  nothing proactively, so from its perspective the device is merely idle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.reporting import TextTable
from ..core.attacker import PhantomDelayAttacker
from ..simnet.trace import FlowKey
from ..core.predictor import TimeoutBehavior
from ..testbed import SmartHomeTestbed
from ._util import run_until


@dataclass
class Finding1Result:
    device_timed_out: bool
    reconnected: bool
    half_open_during: int
    half_open_after: int
    offline_alarms: int

    @property
    def reproduced(self) -> bool:
        return (
            self.device_timed_out
            and self.reconnected
            and self.half_open_during >= 2
            and self.half_open_after <= 1
            and self.offline_alarms == 0
        )


def finding1_half_open(seed: int = 17) -> Finding1Result:
    """Force a device-side timeout on the SimpliSafe keypad and watch the
    cloud keep the dead session without alarming."""
    tb = SmartHomeTestbed(seed=seed)
    keypad = tb.add_device("HS3")
    endpoint = tb.endpoints["simplisafe"]
    tb.settle(8.0)

    attacker = PhantomDelayAttacker.deploy(tb)
    attacker.interpose(keypad.host.ip)  # type: ignore[attr-defined]
    tb.run(30.0)

    sessions_before = keypad.client.stats["sessions_opened"]
    # Hold the event past the keypad's 20 s event-ack timeout on purpose
    # (clamp off: this experiment *wants* the device-side timeout).
    attacker.delay_next_event(
        keypad.host.ip,  # type: ignore[attr-defined]
        TimeoutBehavior.from_profile(keypad.profile),
        duration=40.0,
        clamp=False,
        suppress_close=True,
    )
    keypad.stimulate("code-entered")
    run_until(
        tb.sim, lambda: keypad.client.stats["sessions_opened"] > sessions_before, 60.0
    )
    tb.run(1.0)  # let the reconnect handshake finish
    half_open_during = endpoint.half_open_count("hs3")
    tb.run(120.0)  # past the stale session's liveness window
    return Finding1Result(
        device_timed_out=tb.alarms.count("event-ack-timeout") > 0,
        reconnected=keypad.client.stats["sessions_opened"] > sessions_before,
        half_open_during=half_open_during,
        half_open_after=endpoint.half_open_count("hs3"),
        offline_alarms=tb.alarms.count("device-offline"),
    )


@dataclass
class Finding2Row:
    delay: float
    delivered_to_engine: bool
    discarded: bool
    alarms: int


def finding2_event_discard(
    delays: tuple[float, ...] = (10.0, 25.0, 35.0, 50.0),
    window: float = 30.0,
    seed: int = 19,
) -> list[Finding2Row]:
    """Delay the Ring base's event by varying amounts against an Alexa-style
    30 s discard window; past the window the event silently vanishes."""
    rows = []
    for i, delay in enumerate(delays):
        tb = SmartHomeTestbed(seed=seed + i, integration_staleness=window)
        base = tb.add_device("HS1")
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(base.host.ip)  # type: ignore[attr-defined]
        tb.run(35.0)
        attacker.delay_next_event(
            base.host.ip,  # type: ignore[attr-defined]
            TimeoutBehavior.from_profile(base.profile),
            duration=delay,
        )
        base.stimulate("armed-away")
        tb.run(delay + 20.0)
        delivered = any(
            e.event_name == "security.armed-away"
            for e in tb.integration.engine.event_log
        )
        rows.append(
            Finding2Row(
                delay=delay,
                delivered_to_engine=delivered,
                discarded=tb.integration.stats["events_discarded"] > 0,
                alarms=tb.alarms.count(),
            )
        )
    return rows


@dataclass
class Finding3Result:
    hold_duration: float
    downlink_data_packets: int
    server_still_believes_online: bool

    @property
    def reproduced(self) -> bool:
        return self.downlink_data_packets == 0 and self.server_still_believes_online


def finding3_unidirectional_liveness(seed: int = 23, hold_for: float = 40.0) -> Finding3Result:
    """While the SmartThings uplink is held, the server initiates nothing:
    liveness checking is entirely device-driven."""
    tb = SmartHomeTestbed(seed=seed)
    contact = tb.add_device("C2")
    hub = tb.devices["h1"]
    endpoint = tb.endpoints["smartthings"]
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    attacker.interpose(hub.ip)
    tb.run(35.0)

    operation = attacker.delay_next_event(
        hub.ip,
        TimeoutBehavior.from_profile(hub.profile),
        duration=hold_for,
        trigger_size=contact.profile.event_size,
        clamp=False,
    )
    contact.stimulate("open")
    run_until(tb.sim, lambda: operation.triggered_at is not None, 10.0)
    start = operation.triggered_at or tb.now
    tb.run(hold_for - 1.0)
    # Count server-initiated data on the *held flow* while the hold lived —
    # reconnection handshakes after a timeout are a different session.
    closes = attacker.hijacker.close_events_involving(hub.ip, since=start)
    window_end = min(
        start + hold_for - 1.0, closes[0].ts if closes else float("inf")
    )
    downlink = 0
    for captured, ip, segment in attacker.capture.tcp_frames():
        if (
            start <= captured.ts < window_end
            and ip.dst_ip == hub.ip
            and segment.payload_size > 0
            and operation.hold.flow is not None
            and FlowKey.of(ip.src_ip, segment.src_port, ip.dst_ip, segment.dst_port)
            == operation.hold.flow
        ):
            downlink += 1
    online = endpoint.device_appears_online("h1")
    return Finding3Result(
        hold_duration=hold_for,
        downlink_data_packets=downlink,
        server_still_believes_online=online,
    )


def render_findings(
    f1: Finding1Result, f2: list[Finding2Row], f3: Finding3Result
) -> str:
    parts = []
    t1 = TextTable(
        ["Device timed out", "Reconnected", "Half-open during", "Half-open after", "Offline alarms", "Reproduced"],
        title="Finding 1 — half-open connections postpone 'device offline'",
    )
    t1.add_row(
        f1.device_timed_out, f1.reconnected, f1.half_open_during,
        f1.half_open_after, f1.offline_alarms, "yes" if f1.reproduced else "NO",
    )
    parts.append(t1.render())
    t2 = TextTable(
        ["Delay (s)", "Reached rule engine", "Silently discarded", "Alarms"],
        title="Finding 2 — events delayed past the integration window vanish",
    )
    for row in f2:
        t2.add_row(f"{row.delay:.0f}", row.delivered_to_engine, row.discarded, row.alarms)
    parts.append(t2.render())
    t3 = TextTable(
        ["Hold (s)", "Server-initiated data packets", "Server believes device online", "Reproduced"],
        title="Finding 3 — liveness checking is unidirectional",
    )
    t3.add_row(
        f"{f3.hold_duration:.0f}", f3.downlink_data_packets,
        f3.server_still_believes_online, "yes" if f3.reproduced else "NO",
    )
    parts.append(t3.render())
    return "\n\n".join(parts)
