"""Extension experiment: phantom delay vs packet-discarding (jamming-style).

The introduction contrasts the phantom delay with jamming on three points:

1. jamming discards packets and so triggers *retransmissions* ("repetitive
   retransmission of packets is suspicious");
2. jamming causes *disconnections and timeout alerts*;
3. reactive jamming needs special hardware (outside a simulator's scope —
   but the first two are measurable).

The experiment mounts the same 25-second interference against the same
device with three middle-box behaviours and scores their observable
artifacts: a **detectability profile** of retransmissions, reconnects,
alarms, and message fate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.reporting import TextTable
from ..core.attacker import PhantomDelayAttacker
from ..core.hijacker import TcpHijacker
from ..core.predictor import TimeoutBehavior
from ..simnet.packet import EthernetFrame, IpPacket
from ..tcp.segment import TcpSegment
from ..testbed import SmartHomeTestbed

MODES = ("phantom-delay", "drop-segments", "drop-all")


class DroppingMiddlebox(TcpHijacker):
    """Jamming stand-in: discards matching traffic instead of holding it.

    ``drop_data_only`` models selective jamming of payload frames;
    otherwise everything on the device's uplink is swallowed (channel
    jamming during the window).
    """

    def __init__(self, host, device_ip: str, drop_data_only: bool) -> None:
        super().__init__(host)
        self.device_ip = device_ip
        self.drop_data_only = drop_data_only
        self.dropping = False
        self.dropped = 0

    def _on_foreign_ip(self, packet: IpPacket, frame: EthernetFrame) -> None:
        if self.dropping and packet.src_ip == self.device_ip:
            segment = packet.payload
            is_data = isinstance(segment, TcpSegment) and segment.payload_size > 0
            if is_data or not self.drop_data_only:
                self.dropped += 1
                return  # swallowed: no ACK, no forward
        super()._on_foreign_ip(packet, frame)


@dataclass
class ContrastRow:
    mode: str
    retransmissions: int
    reconnects: int
    alarms: int
    event_delivered: bool
    delivery_delay: float | None

    @property
    def silent(self) -> bool:
        return self.alarms == 0 and self.retransmissions == 0 and self.reconnects == 0


def run_jamming_contrast(window: float = 25.0, seed: int = 261) -> list[ContrastRow]:
    return [_run_mode(mode, window, seed + i) for i, mode in enumerate(MODES)]


def _run_mode(mode: str, window: float, seed: int) -> ContrastRow:
    tb = SmartHomeTestbed(seed=seed)
    contact = tb.add_device("C2")
    hub = tb.devices["h1"]
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    dropper: DroppingMiddlebox | None = None
    if mode != "phantom-delay":
        dropper = DroppingMiddlebox(
            attacker.host, hub.ip, drop_data_only=(mode == "drop-segments")
        )
        attacker.hijacker = dropper
    attacker.interpose(hub.ip)
    tb.run(35.0)

    alarms_before = tb.alarms.count()
    reconnects_before = hub.client.stats["reconnects"]
    event_time = tb.now

    if mode == "phantom-delay":
        attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=window, trigger_size=contact.profile.event_size,
        )
        contact.stimulate("open")
        tb.run(window + 60.0)
    else:
        assert dropper is not None
        dropper.dropping = True
        contact.stimulate("open")
        tb.run(window)
        dropper.dropping = False
        tb.run(60.0)

    retrans = sum(c.stats["retransmissions"] for c in hub.stack.connections())
    # Connections reset during the window lose their stats; count losses too.
    retrans += 2 * hub.client.stats["reconnects"]
    events = tb.endpoints["smartthings"].events_from("c2")
    delay = events[0][0] - event_time if events else None
    return ContrastRow(
        mode=mode,
        retransmissions=retrans,
        reconnects=hub.client.stats["reconnects"] - reconnects_before,
        alarms=tb.alarms.count() - alarms_before,
        event_delivered=bool(events),
        delivery_delay=delay,
    )


def render_jamming_contrast(rows: list[ContrastRow]) -> str:
    table = TextTable(
        ["Interference", "Retransmissions", "Reconnects", "Alarms",
         "Event delivered", "Delivery delay", "Silent"],
        title="Phantom delay vs packet discarding (the jamming contrast)",
    )
    for row in rows:
        table.add_row(
            row.mode,
            row.retransmissions,
            row.reconnects,
            row.alarms,
            row.event_delivered,
            f"{row.delivery_delay:.1f}s" if row.delivery_delay is not None else "lost/never",
            "yes" if row.silent else "NO",
        )
    return table.render()
