"""Experiment E3: regenerate Table III (the 11 PoC attack cases).

Every case runs twice — identical home, identical physical timeline, with
and without the attacker — and the row reports the consequence column of
the paper's Table III plus stealth (alarm counts must be zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.reporting import TextTable
from ..core.attacks.base import Scenario, ScenarioResult, compare_scenario
from ..core.attacks.scenarios import FIGURE3_SCENARIOS, TABLE3_SCENARIOS
from ..parallel import CampaignRunner, Shard


@dataclass
class CaseRow:
    scenario: Scenario
    baseline: ScenarioResult
    attacked: ScenarioResult

    @property
    def consequence_reproduced(self) -> bool:
        """Did the attack change the outcome the way the paper reports?"""
        return _consequence_holds(self.scenario, self.baseline, self.attacked)

    @property
    def stealthy(self) -> bool:
        return self.attacked.stealthy


def _consequence_holds(
    scenario: Scenario, baseline: ScenarioResult, attacked: ScenarioResult
) -> bool:
    b, a = baseline.metrics, attacked.metrics
    kind = scenario.attack_type
    if kind == "state-update-delay":
        if scenario.case_id == "Case 4":
            return bool(b.get("heater_turned_off")) and not a.get("heater_turned_off")
        return (
            a.get("alert_latency") is not None
            and b.get("alert_latency") is not None
            and a["alert_latency"] > b["alert_latency"] + 10.0
        )
    if kind == "action-delay":
        if scenario.case_id == "Case 4":
            return bool(b.get("heater_turned_off")) and not a.get("heater_turned_off")
        key = "lock_latency" if "lock_latency" in b else "shutoff_latency"
        return (
            a.get(key) is not None
            and b.get(key) is not None
            and a[key] > b[key] + 10.0
        )
    if kind == "spurious-execution":
        flag = _spurious_flag(b)
        return not b.get(flag) and bool(a.get(flag))
    if kind == "disabled-execution":
        flag = _disabled_flag(b)
        return bool(b.get(flag)) and not a.get(flag)
    return False


def _spurious_flag(metrics: dict[str, Any]) -> str:
    for key in ("disarmed", "heater_turned_on", "window_opened", "unlocked"):
        if key in metrics:
            return key
    raise KeyError(f"no spurious flag in {metrics}")


def _disabled_flag(metrics: dict[str, Any]) -> str:
    for key in ("warning_sent", "auto_locked", "heater_turned_off"):
        if key in metrics:
            return key
    raise KeyError(f"no disabled flag in {metrics}")


def _run_case(
    scenario: Scenario,
    seed: int,
    faults: Any = None,
    check_invariants: bool = False,
) -> CaseRow:
    """One shard: the with/without pair for a single PoC case."""
    baseline, attacked = compare_scenario(
        scenario, seed=seed, faults=faults, check_invariants=check_invariants
    )
    return CaseRow(scenario=scenario, baseline=baseline, attacked=attacked)


def run_table3(
    seed: int = 3,
    scenarios: list[Scenario] | None = None,
    jobs: int | None = 1,
    runner: CampaignRunner | None = None,
    faults: Any = None,
    check_invariants: bool = False,
    cache: Any = None,
    manifest: Any = True,
) -> list[CaseRow]:
    """One shard per case; every case keeps the campaign seed, as before.

    ``faults`` (profile or spec string) runs every case on an impaired LAN;
    ``check_invariants`` audits each run with the cross-layer suite;
    ``cache`` reuses content-addressed shard results (the faults spec is
    part of the key, so impaired and clean runs never mix).
    """
    cases = list(scenarios or TABLE3_SCENARIOS)
    shards = [
        Shard(
            key=f"table3/{scenario.case_id or scenario.name}",
            fn=_run_case,
            kwargs={
                "scenario": scenario,
                "faults": faults,
                "check_invariants": check_invariants,
            },
            seed=seed,
        )
        for scenario in cases
    ]
    runner = runner or CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="table3", cache=cache,
        manifest=manifest,
    )
    return runner.run(shards)


def run_figure3(
    seed: int = 3,
    jobs: int | None = 1,
    runner: CampaignRunner | None = None,
    faults: Any = None,
    check_invariants: bool = False,
    cache: Any = None,
    manifest: Any = True,
) -> list[CaseRow]:
    return run_table3(
        seed=seed,
        scenarios=FIGURE3_SCENARIOS,
        jobs=jobs,
        runner=runner,
        faults=faults,
        check_invariants=check_invariants,
        cache=cache,
        manifest=manifest,
    )


def _headline(metrics: dict[str, Any]) -> str:
    parts = []
    for key, value in metrics.items():
        if key in ("stealthy_hold", "achieved_delay", "combined_window"):
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.1f}")
        else:
            parts.append(f"{key}={value}")
    return ", ".join(parts)


def render_table3(rows: list[CaseRow], title: str = "Table III — PoC attack cases") -> str:
    table = TextTable(
        ["Case", "Type", "Rule", "Without attack", "With attack", "Reproduced", "Stealthy"],
        title=title,
    )
    for row in rows:
        table.add_row(
            row.scenario.case_id,
            row.scenario.attack_type,
            row.scenario.description,
            _headline(row.baseline.metrics),
            _headline(row.attacked.metrics),
            "yes" if row.consequence_reproduced else "NO",
            "yes" if row.stealthy else "NO",
        )
    return table.render()
