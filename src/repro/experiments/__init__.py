"""Experiment drivers: one module per paper table/figure/finding.

Shared by the CLI (``phantom-delay <experiment>``) and the pytest-benchmark
harness under ``benchmarks/``.
"""

from .ablations import (
    render_ablations,
    run_forged_ack_ablation,
    run_margin_sweep,
    run_pattern_comparison,
)
from .countermeasures import (
    run_ack_timeout_sweep,
    run_delay_detection,
    run_keepalive_cost_curve,
    run_static_arp_defense,
    run_timestamp_defense,
    render_countermeasures,
)
from .findings import (
    finding1_half_open,
    finding2_event_discard,
    finding3_unidirectional_liveness,
    render_findings,
)
from .jamming_contrast import render_jamming_contrast, run_jamming_contrast
from .recognition import render_recognition, run_recognition
from .registry import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    register,
    unregister,
)
from .robustness import render_robustness, run_robustness
from .table1 import profile_label, render_table1, run_table1
from .table2 import profile_local_label, render_table2, run_table2
from .table3 import render_table3, run_figure3, run_table3
from .tls_integrity import render_integrity, run_integrity_experiment
from .verification import render_verification, run_verification, verify_device

__all__ = [
    "ExperimentSpec",
    "experiment_names",
    "get_experiment",
    "register",
    "unregister",
    "finding1_half_open",
    "render_ablations",
    "run_forged_ack_ablation",
    "run_margin_sweep",
    "run_pattern_comparison",
    "run_static_arp_defense",
    "render_jamming_contrast",
    "render_recognition",
    "render_robustness",
    "run_jamming_contrast",
    "run_recognition",
    "run_robustness",
    "finding2_event_discard",
    "finding3_unidirectional_liveness",
    "profile_label",
    "profile_local_label",
    "render_countermeasures",
    "render_findings",
    "render_integrity",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_verification",
    "run_ack_timeout_sweep",
    "run_delay_detection",
    "run_figure3",
    "run_integrity_experiment",
    "run_keepalive_cost_curve",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_timestamp_defense",
    "run_verification",
    "verify_device",
]
