"""Step-load breaking-point experiment: how many homes can one box carry?

Runs a geometric fleet ladder — N homes, then 2N, 4N, … — until a stop
condition trips:

* **wall-clock**: one step took longer than its wall budget,
* **event-budget**: one step's total simulated events exceeded the cap, or
* **success-floor**: the fraction of homes that finished inside their
  per-home event budget fell below the floor.

Every step is its own fleet campaign (``<campaign>-step-<homes>``) with
its own manifest; the tripping step's manifest carries the stop condition
as a ``breaking_point/stopped{reason=...}`` counter, so ``observe report``
and ``observe diff`` show *why* the ladder ended, not just where.  The
ladder is in the style of the UC5 edge-monitoring scalability test: the
interesting output is the largest sustained population and the resource
that gave out first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..fleet import DEFAULT_BATCH_SIZE, FleetConfig, FleetReport, FleetRunner
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import RegistrySnapshot

#: Stop reasons, in the order they are checked (first trip wins).
REASON_WALL_CLOCK = "wall-clock"
REASON_EVENT_BUDGET = "event-budget"
REASON_SUCCESS_FLOOR = "success-floor"
REASON_MAX_STEPS = "max-steps"


@dataclass(frozen=True)
class StepResult:
    """One rung of the ladder."""

    step: int
    homes: int
    completed: int
    events: int
    wall_seconds: float
    homes_per_second: float
    success_rate: float
    fleet_digest: str
    stop_reason: str | None
    manifest_path: Path | None

    @property
    def passed(self) -> bool:
        return self.stop_reason is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "step": self.step,
            "homes": self.homes,
            "completed": self.completed,
            "events": self.events,
            "wall_seconds": round(self.wall_seconds, 6),
            "homes_per_second": round(self.homes_per_second, 3),
            "success_rate": round(self.success_rate, 6),
            "fleet_digest": self.fleet_digest,
            "stop_reason": self.stop_reason,
            "manifest_path": str(self.manifest_path) if self.manifest_path else None,
        }


@dataclass
class BreakingPointReport:
    """The whole ladder: every step plus where and why it stopped."""

    steps: list[StepResult] = field(default_factory=list)
    stop_reason: str | None = None

    @property
    def breaking_point(self) -> int | None:
        """Homes at the step that tripped (None if the ladder ran out)."""
        for step in self.steps:
            if step.stop_reason is not None and step.stop_reason != REASON_MAX_STEPS:
                return step.homes
        return None

    @property
    def max_sustained(self) -> int:
        """The largest population that passed every condition."""
        passed = [s.homes for s in self.steps if s.passed]
        return max(passed) if passed else 0

    def render(self) -> str:
        lines = ["Breaking point — step-load fleet ladder", ""]
        lines.append(
            f"{'step':>4}  {'homes':>8}  {'ok':>8}  {'events':>10}  "
            f"{'wall(s)':>8}  {'homes/s':>8}  {'success':>8}  outcome"
        )
        for s in self.steps:
            outcome = s.stop_reason or "pass"
            lines.append(
                f"{s.step:>4}  {s.homes:>8}  {s.completed:>8}  {s.events:>10}  "
                f"{s.wall_seconds:>8.2f}  {s.homes_per_second:>8.1f}  "
                f"{s.success_rate:>8.3f}  {outcome}"
            )
        lines.append("")
        if self.breaking_point is not None:
            lines.append(
                f"breaking point: {self.breaking_point} homes ({self.stop_reason}); "
                f"max sustained: {self.max_sustained} homes"
            )
        else:
            lines.append(
                f"no breaking point within {len(self.steps)} step(s); "
                f"max sustained: {self.max_sustained} homes"
            )
        return "\n".join(lines)


def step_campaign(campaign: str, homes: int) -> str:
    """The per-step campaign name (and thus manifest stem)."""
    return f"{campaign}-step-{homes}"


def run_breaking_point(
    start_homes: int = 4,
    growth_factor: int = 2,
    max_steps: int = 8,
    seed: int = 0,
    jobs: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    config: FleetConfig | None = None,
    home_event_budget: int | None = None,
    step_event_limit: int | None = None,
    wall_limit: float | None = None,
    success_floor: float = 0.95,
    campaign: str = "breaking-point",
    cache: Any = None,
    manifest: Any = True,
) -> BreakingPointReport:
    """Climb the ladder until a budget trips; one manifest per step.

    ``home_event_budget`` caps each home's scheduler events (a home over
    budget counts as failed, feeding ``success_floor``);
    ``step_event_limit`` caps a whole step's simulated events;
    ``wall_limit`` caps a step's wall-clock seconds.  With no limits set
    the ladder runs all ``max_steps`` rungs and reports
    ``max-steps`` as the stop reason.
    """
    if start_homes < 1:
        raise ValueError(f"start_homes must be >= 1: {start_homes}")
    if growth_factor < 2:
        raise ValueError(f"growth_factor must be >= 2: {growth_factor}")
    report = BreakingPointReport()
    homes = start_homes
    for step in range(max_steps):
        runner = FleetRunner(
            homes=homes,
            base_seed=seed,
            jobs=jobs,
            batch_size=batch_size,
            config=config,
            event_budget=home_event_budget,
            cache=cache,
            manifest=manifest,
            campaign=step_campaign(campaign, homes),
        )
        fleet = runner.run(keep_rows=False)
        reason = _stop_reason(
            fleet,
            wall_limit=wall_limit,
            step_event_limit=step_event_limit,
            success_floor=success_floor,
        )
        manifest_path = _attribute_step(runner, fleet, step, reason)
        report.steps.append(StepResult(
            step=step,
            homes=homes,
            completed=fleet.completed,
            events=fleet.events,
            wall_seconds=fleet.wall_seconds,
            homes_per_second=fleet.homes_per_second,
            success_rate=fleet.success_rate,
            fleet_digest=fleet.fleet_digest,
            stop_reason=reason,
            manifest_path=manifest_path,
        ))
        if reason is not None:
            report.stop_reason = reason
            return report
        homes *= growth_factor
    # The ladder ran out without tripping anything: the last rung still
    # *passed*, so it stays in ``max_sustained`` and only the report-level
    # stop reason records that we hit the step cap.
    report.stop_reason = REASON_MAX_STEPS
    return report


def _stop_reason(
    fleet: FleetReport,
    wall_limit: float | None,
    step_event_limit: int | None,
    success_floor: float,
) -> str | None:
    if wall_limit is not None and fleet.wall_seconds > wall_limit:
        return REASON_WALL_CLOCK
    if step_event_limit is not None and fleet.events > step_event_limit:
        return REASON_EVENT_BUDGET
    if fleet.success_rate < success_floor:
        return REASON_SUCCESS_FLOOR
    return None


def _attribute_step(
    runner: FleetRunner,
    fleet: FleetReport,
    step: int,
    reason: str | None,
) -> Path | None:
    """Fold the step verdict into the step's manifest and rewrite it.

    The step metrics live in a ``breaking_point`` component merged into
    the campaign snapshot, so the stop condition is attributed *in the
    manifest itself* (and survives ``observe report``/``diff``), not just
    in this process's return value.
    """
    registry = MetricsRegistry(capture=False)
    registry.counter("breaking_point", "step").inc(step)
    registry.counter("breaking_point", "homes").inc(fleet.homes)
    registry.counter("breaking_point", "homes_completed").inc(fleet.completed)
    registry.counter("breaking_point", "homes_failed").inc(fleet.failed)
    outcome = reason if reason is not None else "pass"
    registry.counter("breaking_point", "stopped", reason=outcome).inc()
    campaign_runner = runner.runner
    campaign_runner.last_snapshot = campaign_runner.last_snapshot.merge(
        RegistrySnapshot.of(registry)
    )
    if campaign_runner.manifest is None or campaign_runner.manifest is False:
        return None
    return campaign_runner.write_manifest(
        None if campaign_runner.manifest is True else campaign_runner.manifest
    )


__all__ = [
    "REASON_EVENT_BUDGET",
    "REASON_MAX_STEPS",
    "REASON_SUCCESS_FLOOR",
    "REASON_WALL_CLOCK",
    "BreakingPointReport",
    "StepResult",
    "run_breaking_point",
    "step_campaign",
]
