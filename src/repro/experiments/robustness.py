"""Experiment: attack robustness under network impairment (extension).

The paper's testbed is a clean home WiFi; a real deployment sees loss,
jitter, and bursts.  This sweep re-runs the Table III PoC cases over a
loss × jitter grid with the fault injector on the LAN and the cross-layer
invariant suite armed, answering two questions at once:

* does every phantom-delay attack still reproduce (and stay stealthy)
  when the network genuinely misbehaves, and
* does the simulator itself stay honest — no invariant (TCP exactly-once,
  TLS integrity, hold-release order, rule provenance) may break.

One shard per (cell, case), so the grid parallelises like any campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.reporting import TextTable
from ..core.attacks.base import Scenario, compare_scenario
from ..core.attacks.scenarios import TABLE3_SCENARIOS
from ..faults.profiles import FaultProfile
from ..parallel import CampaignRunner, Shard
from .table3 import _consequence_holds

#: Default sweep: clean through "bad home WiFi" (5% loss / 20 ms jitter).
DEFAULT_LOSS_GRID = (0.0, 0.01, 0.03, 0.05)
DEFAULT_JITTER_GRID = (0.0, 0.01, 0.02)


@dataclass
class CellResult:
    """One PoC case at one (loss, jitter) grid point."""

    loss: float
    jitter: float
    scenario: str
    case_id: str
    reproduced: bool
    stealthy: bool
    violations: int
    fault_stats: dict[str, int] | None

    @property
    def success(self) -> bool:
        return self.reproduced and self.stealthy


def _profile_for(loss: float, jitter: float) -> FaultProfile | None:
    if loss == 0.0 and jitter == 0.0:
        return None  # the ideal link: the Table III baseline conditions
    return FaultProfile(name=f"grid-l{loss:g}-j{jitter:g}", loss=loss, jitter=jitter)


def _run_cell_case(
    scenario: Scenario, loss: float, jitter: float, seed: int
) -> CellResult:
    """One shard: with/without pair for one case on one impaired link."""
    baseline, attacked = compare_scenario(
        scenario, seed=seed, faults=_profile_for(loss, jitter), check_invariants=True
    )
    violations = len(baseline.invariant_violations or []) + len(
        attacked.invariant_violations or []
    )
    return CellResult(
        loss=loss,
        jitter=jitter,
        scenario=scenario.name,
        case_id=scenario.case_id,
        reproduced=_consequence_holds(scenario, baseline, attacked),
        stealthy=attacked.stealthy,
        violations=violations,
        fault_stats=attacked.fault_stats,
    )


def run_robustness(
    seed: int = 3,
    loss_grid: tuple[float, ...] = DEFAULT_LOSS_GRID,
    jitter_grid: tuple[float, ...] = DEFAULT_JITTER_GRID,
    scenarios: list[Scenario] | None = None,
    jobs: int | None = 1,
    runner: CampaignRunner | None = None,
    cache: Any = None,
    manifest: Any = True,
) -> list[CellResult]:
    """Sweep the grid; deterministic for a seed regardless of ``jobs``."""
    cases = list(scenarios or TABLE3_SCENARIOS)
    shards = [
        Shard(
            key=f"robustness/l{loss:g}/j{jitter:g}/{sc.case_id or sc.name}",
            fn=_run_cell_case,
            kwargs={"scenario": sc, "loss": loss, "jitter": jitter},
            seed=seed,
        )
        for loss in loss_grid
        for jitter in jitter_grid
        for sc in cases
    ]
    runner = runner or CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="robustness", cache=cache,
        manifest=manifest,
    )
    return runner.run(shards)


def render_robustness(
    results: list[CellResult],
    title: str = "Attack robustness — Table III success under loss × jitter",
) -> str:
    losses = sorted({r.loss for r in results})
    jitters = sorted({r.jitter for r in results})
    cells: dict[tuple[float, float], list[CellResult]] = {}
    for r in results:
        cells.setdefault((r.loss, r.jitter), []).append(r)
    table = TextTable(
        ["loss \\ jitter"] + [f"{j * 1000:g}ms" for j in jitters], title=title
    )
    for loss in losses:
        row: list[Any] = [f"{loss * 100:g}%"]
        for jitter in jitters:
            group = cells.get((loss, jitter), [])
            ok = sum(1 for g in group if g.success)
            cell = f"{ok}/{len(group)}"
            viol = sum(g.violations for g in group)
            if viol:
                cell += f" [{viol} INV!]"
            row.append(cell)
        table.add_row(*row)
    lines = [table.render()]
    failed = [r for r in results if not r.success]
    if failed:
        lines.append("failed cells:")
        lines.extend(
            f"  {r.case_id} @ loss={r.loss:g} jitter={r.jitter:g}: "
            f"reproduced={r.reproduced} stealthy={r.stealthy}"
            for r in failed
        )
    else:
        lines.append(
            "every case reproduced stealthily at every grid point; "
            "all invariants held"
        )
    return "\n".join(lines)
