"""Experiment E9: Clarification I — what TLS does and does not allow.

An on-path attacker who tampers with protected bytes gets caught; one who
only *delays* them does not.  The experiment runs five middle-box
behaviours against the same session:

* ``pass-through`` — control; silent.
* ``hold-release``  — the phantom delay; silent (the paper's attack).
* ``corrupt``       — flip one payload byte; MAC verification fails.
* ``inject``        — append a stream-level duplicate of the record; the
  implicit sequence number makes its MAC fail (covers replay *and*
  reorder, which are the same violation at the record layer).
* ``drop``          — swallow the segment but forge its ACK; the stream
  gap stalls the session until timeout alarms fire.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from ..analysis.reporting import TextTable
from ..core.attacker import PhantomDelayAttacker
from ..core.hijacker import TcpHijacker
from ..core.predictor import TimeoutBehavior
from ..simnet.packet import EthernetFrame, IpPacket
from ..tcp.segment import TcpSegment, seq_add
from ..testbed import SmartHomeTestbed

MODES = ("pass-through", "hold-release", "corrupt", "inject", "drop")


class TamperingMiddlebox(TcpHijacker):
    """A hijacker that can also *violate* integrity, for contrast."""

    def __init__(self, host) -> None:
        super().__init__(host)
        self._tamper_mode: str | None = None
        self._tamper_device: str | None = None
        self._tamper_size: int | None = None
        self.tampered = 0

    def tamper_next(self, device_ip: str, mode: str, trigger_size: int | None = None) -> None:
        if mode not in ("corrupt", "inject", "drop"):
            raise ValueError(f"unknown tamper mode {mode!r}")
        self._tamper_mode = mode
        self._tamper_device = device_ip
        self._tamper_size = trigger_size

    def _on_foreign_ip(self, packet: IpPacket, frame: EthernetFrame) -> None:
        segment = packet.payload
        if (
            self._tamper_mode is not None
            and isinstance(segment, TcpSegment)
            and packet.src_ip == self._tamper_device
            and segment.payload_size > 0
            and (self._tamper_size is None or segment.payload_size == self._tamper_size)
        ):
            mode, self._tamper_mode = self._tamper_mode, None
            self.tampered += 1
            tracker = self._track(packet, segment)
            if mode == "corrupt":
                corrupted = bytes([segment.payload[0] ^ 0xFF]) + segment.payload[1:]
                self._forward(
                    IpPacket(packet.src_ip, packet.dst_ip, dc_replace(segment, payload=corrupted))
                )
                return
            if mode == "inject":
                self._forward(packet)
                duplicate = dc_replace(
                    segment, seq=seq_add(segment.seq, len(segment.payload))
                )
                self._forward(IpPacket(packet.src_ip, packet.dst_ip, duplicate))
                return
            if mode == "drop":
                # Swallow the record but keep the sender quiet with a
                # forged ACK — the stream now has a permanent gap.
                ack = TcpSegment(
                    src_port=segment.dst_port,
                    dst_port=segment.src_port,
                    seq=tracker.nxt.get(packet.dst_ip, 0),
                    ack=seq_add(segment.seq, segment.seq_space),
                    flags=frozenset({"ACK"}),
                )
                self.host.send_ip(IpPacket(packet.dst_ip, packet.src_ip, ack))
                return
        super()._on_foreign_ip(packet, frame)


@dataclass
class IntegrityRow:
    mode: str
    event_delivered: bool
    tls_alerts: int
    total_alarms: int
    silent: bool

    @property
    def matches_paper(self) -> bool:
        if self.mode in ("pass-through", "hold-release"):
            return self.silent and self.event_delivered
        # Any violation must be loud (TLS alert, or timeout alarms for drop).
        return not self.silent


def run_integrity_experiment(seed: int = 61) -> list[IntegrityRow]:
    rows = []
    for i, mode in enumerate(MODES):
        rows.append(_run_mode(mode, seed=seed + i))
    return rows


def _run_mode(mode: str, seed: int) -> IntegrityRow:
    tb = SmartHomeTestbed(seed=seed)
    contact = tb.add_device("C2")
    hub = tb.devices["h1"]
    endpoint = tb.endpoints["smartthings"]
    tb.settle(8.0)

    attacker = PhantomDelayAttacker.deploy(tb)
    # Swap in the tampering-capable middle-box before interposing.
    middlebox = TamperingMiddlebox(attacker.host)
    attacker.hijacker = middlebox
    attacker.interpose(hub.ip)
    tb.run(35.0)
    events_before = len(endpoint.events_from("c2"))
    alarms_before = tb.alarms.count()

    if mode == "hold-release":
        attacker.delay_next_event(
            hub.ip,
            TimeoutBehavior.from_profile(hub.profile),
            duration=20.0,
            trigger_size=contact.profile.event_size,
        )
    elif mode in ("corrupt", "inject", "drop"):
        middlebox.tamper_next(hub.ip, mode, trigger_size=contact.profile.event_size)

    contact.stimulate("open")
    tb.run(120.0)

    delivered = len(endpoint.events_from("c2")) > events_before
    alarms = tb.alarms.count() - alarms_before
    return IntegrityRow(
        mode=mode,
        event_delivered=delivered,
        tls_alerts=tb.alarms.count("tls-alert"),
        total_alarms=alarms,
        silent=alarms == 0,
    )


def render_integrity(rows: list[IntegrityRow]) -> str:
    table = TextTable(
        ["Middle-box behaviour", "Event delivered", "TLS alerts", "Alarms", "Silent", "As paper"],
        title="TLS integrity vs delay: only the phantom delay stays silent",
    )
    for row in rows:
        table.add_row(
            row.mode,
            row.event_delivered,
            row.tls_alerts,
            row.total_alarms,
            "yes" if row.silent else "no",
            "yes" if row.matches_paper else "NO",
        )
    return table.render()
