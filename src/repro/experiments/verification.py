"""Experiment E5: the Section VI-C verification test.

"For each testing device, we randomly trigger and delay its messages and
predict the timeout occurrence according to the collected parameters.  We
end the delay and release the holding messages 2 seconds before the
predicted timeout.  The results show that not only the timeout is 100%
avoided, but the delayed messages are also accepted."

Here: per device, repeated trials at random phases arm a maximum-safe
e-Delay; success requires (a) no connection close on the hijacked path
after the hold, (b) the hold ended by our own scheduled release, and
(c) the delayed event arriving (accepted) at the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..analysis.reporting import TextTable
from ..core.attacker import PhantomDelayAttacker
from ..core.predictor import TimeoutBehavior
from ..devices.profiles import CATALOGUE, Catalogue, TABLE_CLOUD
from ..parallel import CampaignRunner, Shard
from ..testbed import SmartHomeTestbed
from ._util import run_until, uplink_ip_of
from .table1 import make_event_trigger

#: Devices exercised by default: one per timeout shape — on-idle hub
#: session, fixed-pattern session, explicit event timeout, security base,
#: and an on-demand WiFi sensor.
DEFAULT_LABELS = ("C2", "M3", "HS3", "C1", "M7")


@dataclass
class TrialOutcome:
    achieved_delay: float | None
    timeout_avoided: bool
    delivered: bool

    @property
    def success(self) -> bool:
        return self.timeout_avoided and self.delivered


@dataclass
class VerificationRow:
    label: str
    model: str
    trials: list[TrialOutcome] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.success for t in self.trials) / len(self.trials)

    @property
    def avoidance_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.timeout_avoided for t in self.trials) / len(self.trials)


def verify_device(
    label: str,
    trials: int = 5,
    seed: int = 31,
    catalogue: Catalogue | None = None,
) -> VerificationRow:
    catalogue = catalogue or CATALOGUE
    profile = catalogue.get(label, TABLE_CLOUD)
    tb = SmartHomeTestbed(seed=seed, catalogue=catalogue)
    device = tb.add_device(label)
    trigger = make_event_trigger(device, catalogue, tb)
    tb.settle(8.0)

    attacker = PhantomDelayAttacker.deploy(tb)
    uplink = uplink_ip_of(device)
    attacker.interpose(uplink)
    endpoint = tb.endpoints[profile.server]
    behavior = TimeoutBehavior.from_profile(profile)
    primitive = attacker.e_delay(uplink, behavior)
    tb.run(45.0)  # observe at least one keep-alive so the phase is known

    row = VerificationRow(label=label, model=profile.model)
    for _ in range(trials):
        tb.run(5.0 + tb.sim.rng.random() * 50.0)  # random phase
        operation = primitive.arm(duration=None, trigger_size=profile.event_size)
        events_before = len(endpoint.events_from(device.device_id))
        trigger()
        run_until(tb.sim, lambda: operation.triggered_at is not None, 30.0)
        mark = operation.triggered_at if operation.triggered_at is not None else tb.now
        run_until(tb.sim, lambda: operation.released_at is not None, 400.0)
        tb.run(10.0)
        if profile.long_live:
            # Any connection close after the hold began is a timeout we
            # failed to dodge.
            closes = attacker.hijacker.close_events_involving(uplink, since=mark)
            avoided = operation.stealthy and not closes
        else:
            # On-demand sessions close after every delivery by design; the
            # trial fails only if the hold itself died of a session close.
            avoided = operation.stealthy
        delivered = len(endpoint.events_from(device.device_id)) > events_before
        row.trials.append(
            TrialOutcome(
                achieved_delay=operation.achieved_delay,
                timeout_avoided=avoided,
                delivered=delivered,
            )
        )
        tb.run(30.0)  # settle before the next trial
    return row


def run_verification(
    labels: tuple[str, ...] = DEFAULT_LABELS,
    trials: int = 5,
    seed: int = 31,
    catalogue: Catalogue | None = None,
    jobs: int | None = 1,
    runner: CampaignRunner | None = None,
    cache: Any = None,
    manifest: Any = True,
) -> list[VerificationRow]:
    shards = [
        Shard(
            key=f"verification/{label}",
            fn=verify_device,
            kwargs={"label": label, "trials": trials, "catalogue": catalogue},
            seed=seed + i,
        )
        for i, label in enumerate(labels)
    ]
    runner = runner or CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="verification", cache=cache,
        manifest=manifest,
    )
    return runner.run(shards)


def render_verification(rows: list[VerificationRow]) -> str:
    table = TextTable(
        ["Label", "Model", "Trials", "Timeouts avoided", "Accepted+avoided", "Max delay"],
        title="Verification test (paper: 100% avoidance, all messages accepted)",
    )
    for row in rows:
        max_delay = max((t.achieved_delay or 0.0) for t in row.trials)
        table.add_row(
            row.label,
            row.model,
            len(row.trials),
            f"{row.avoidance_rate * 100:.0f}%",
            f"{row.success_rate * 100:.0f}%",
            f"{max_delay:.1f}s",
        )
    return table.render()
