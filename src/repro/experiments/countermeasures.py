"""Experiments E7/E8: the Section VII countermeasures and their limits.

E7 — **ACK timeouts**: harden a device profile with progressively shorter
event-ack timeouts, re-run the maximum-safe e-Delay against each hardened
home, and watch the stealthy window shrink to ~(timeout − margin).  The
companion cost curve shows why this road ends: halving the keep-alive
period doubles the idle traffic (LIFX's sub-2 s interval being the cautionary
tale).

E8 — **timestamp checking**: re-run three attack shapes under a
trigger-freshness window; only the delayed-*trigger* spurious execution is
stopped, exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.reporting import TextTable, fmt_window
from ..core.attacker import PhantomDelayAttacker
from ..core.attacks.base import run_scenario
from ..core.attacks.scenarios import (
    Case1FrontDoorVoiceAlert,
    Case8StormDoorUnlock,
    DelayedTriggerSpurious,
)
from ..core.predictor import TimeoutBehavior
from ..countermeasures.ack_timeout import (
    battery_life_days,
    harden_profile,
    sweep_keepalive_period,
)
from ..countermeasures.timestamp_check import DelayAnomalyDetector
from ..devices.profiles import CATALOGUE, Catalogue, TABLE_CLOUD
from ..parallel import CampaignRunner, Shard
from ..testbed import SmartHomeTestbed
from ._util import run_until


def _catalogue_with(profile) -> Catalogue:
    """A catalogue copy with one profile swapped for its hardened variant."""
    profiles = [
        profile if (p.label, p.table) == (profile.label, profile.table) else p
        for p in CATALOGUE.profiles
    ]
    return Catalogue(profiles)


@dataclass
class AckTimeoutRow:
    ack_timeout: float | None
    predicted_window: tuple[float, float]
    achieved_delay: float | None
    stealthy: bool


def _ack_timeout_case(label: str, timeout: float | None, seed: int) -> AckTimeoutRow:
    """One shard: the maximum-safe e-Delay against one hardened profile."""
    base_profile = CATALOGUE.get(label, TABLE_CLOUD)
    profile = (
        base_profile
        if timeout is None
        else harden_profile(base_profile, event_ack_timeout=timeout)
    )
    catalogue = _catalogue_with(profile)
    tb = SmartHomeTestbed(seed=seed, catalogue=catalogue)
    device = tb.add_device(label)
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    attacker.interpose(device.host.ip)  # type: ignore[attr-defined]
    tb.run(35.0)
    operation = attacker.delay_next_event(
        device.host.ip,  # type: ignore[attr-defined]
        TimeoutBehavior.from_profile(profile),
    )
    device.stimulate("armed-away")
    run_until(tb.sim, lambda: operation.released_at is not None, 300.0)
    tb.run(5.0)
    return AckTimeoutRow(
        ack_timeout=timeout,
        predicted_window=profile.event_delay_window(),
        achieved_delay=operation.achieved_delay,
        stealthy=operation.stealthy and tb.alarms.silent,
    )


def run_ack_timeout_sweep(
    label: str = "HS1",
    timeouts: tuple[float | None, ...] = (None, 30.0, 20.0, 10.0, 5.0),
    seed: int = 41,
    jobs: int | None = 1,
    cache: Any = None,
    manifest: Any = True,
) -> list[AckTimeoutRow]:
    """Measured attack window against progressively hardened profiles."""
    runner = CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="cm-ack-timeout", cache=cache,
        manifest=manifest,
    )
    return runner.run(
        [
            Shard(
                key=f"ack-timeout/{label}/{'none' if timeout is None else f'{timeout:g}'}",
                fn=_ack_timeout_case,
                kwargs={"label": label, "timeout": timeout},
                seed=seed + i,
            )
            for i, timeout in enumerate(timeouts)
        ]
    )


@dataclass
class TrafficRow:
    ka_period: float
    predicted_window: tuple[float, float]
    analytic_bytes_per_hour: float
    measured_bytes_per_hour: float | None = None
    battery_days: float | None = None


def _measure_ka_traffic(label: str, period: float, seed: int) -> float:
    """One shard: measured idle bytes/hour at one keep-alive period."""
    profile = CATALOGUE.get(label, TABLE_CLOUD)
    hardened = harden_profile(profile, ka_period=period)
    catalogue = _catalogue_with(hardened)
    tb = SmartHomeTestbed(seed=seed, catalogue=catalogue)
    tb.add_device(label)
    tb.settle(10.0)
    start_bytes = tb.lan.bytes_transmitted
    window = 600.0
    tb.run(window)
    return (tb.lan.bytes_transmitted - start_bytes) * (3600.0 / window)


def run_keepalive_cost_curve(
    label: str = "HS1",
    periods: tuple[float, ...] = (120.0, 60.0, 30.0, 10.0, 5.0, 2.0),
    measure_periods: tuple[float, ...] = (30.0, 2.0),
    seed: int = 43,
    jobs: int | None = 1,
    cache: Any = None,
    manifest: Any = True,
) -> list[TrafficRow]:
    """Window-vs-traffic trade-off for shortened keep-alive intervals."""
    profile = CATALOGUE.get(label, TABLE_CLOUD)
    rows = [
        TrafficRow(period, window, rate, battery_days=battery_life_days(profile, period))
        for period, window, rate in sweep_keepalive_period(profile, list(periods))
    ]
    to_measure = [row for row in rows if row.ka_period in measure_periods]
    runner = CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="cm-keepalive-cost", cache=cache,
        manifest=manifest,
    )
    measured = runner.run(
        [
            Shard(
                key=f"ka-traffic/{label}/{row.ka_period:g}",
                fn=_measure_ka_traffic,
                kwargs={"label": label, "period": row.ka_period},
                seed=seed,
            )
            for row in to_measure
        ]
    )
    for row, rate in zip(to_measure, measured):
        row.measured_bytes_per_hour = rate
    return rows


@dataclass
class TimestampDefenseRow:
    attack: str
    window: float | None
    outcome: str
    attack_succeeded: bool


def _timestamp_case(shape: str, window: float | None, seed: int) -> TimestampDefenseRow:
    """One shard: one attack shape under one trigger-freshness window."""
    if shape == "delayed-trigger":
        scenario = DelayedTriggerSpurious()
        scenario.trigger_timestamp_window = window
        result = run_scenario(scenario, attacked=True, seed=seed)
        fired = bool(result.metrics.get("heater_turned_on"))
        return TimestampDefenseRow(
            attack="spurious via delayed trigger",
            window=window,
            outcome="action fired" if fired else "stale trigger refused",
            attack_succeeded=fired,
        )
    if shape == "delayed-condition":
        scenario = Case8StormDoorUnlock()
        scenario.trigger_timestamp_window = window
        result = run_scenario(scenario, attacked=True, seed=seed)
        unlocked = bool(result.metrics.get("unlocked"))
        return TimestampDefenseRow(
            attack="spurious via delayed condition (Case 8)",
            window=window,
            outcome="door unlocked for the burglar" if unlocked else "unlock prevented",
            attack_succeeded=unlocked,
        )
    if shape == "state-update":
        scenario = Case1FrontDoorVoiceAlert()
        scenario.trigger_timestamp_window = window
        result = run_scenario(scenario, attacked=True, seed=seed)
        latency = result.metrics.get("alert_latency")
        if latency is None:
            outcome, success = "alert suppressed entirely", True
        elif latency > 10.0:
            outcome, success = f"alert {latency:.0f}s late", True
        else:
            outcome, success = "alert on time", False
        return TimestampDefenseRow(
            attack="state-update delay (Case 1)",
            window=window,
            outcome=outcome,
            attack_succeeded=success,
        )
    raise ValueError(f"unknown timestamp-defence shape: {shape!r}")


def run_timestamp_defense(
    seed: int = 47, jobs: int | None = 1, cache: Any = None,
    manifest: Any = True,
) -> list[TimestampDefenseRow]:
    """Re-run three attack shapes with and without timestamp checking."""
    shapes = ("delayed-trigger", "delayed-condition", "state-update")
    runner = CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="cm-timestamp", cache=cache,
        manifest=manifest,
    )
    return runner.run(
        [
            Shard(
                key=f"timestamp/{shape}/{'off' if window is None else f'{window:g}'}",
                fn=_timestamp_case,
                kwargs={"shape": shape, "window": window},
                seed=seed,
            )
            for shape in shapes
            for window in (None, 10.0)
        ]
    )


@dataclass
class StaticArpRow:
    hardened: bool
    hold_triggered: bool
    event_delay: float | None

    @property
    def attack_succeeded(self) -> bool:
        return self.hold_triggered and (self.event_delay or 0.0) > 5.0


def run_static_arp_defense(seed: int = 59) -> list[StaticArpRow]:
    """Extension: reject unsolicited ARP replies and the hijack never starts.

    The paper's attack model rests on ARP spoofing being widely effective;
    hardening the ARP caches (static entries / solicited-only learning) is
    the obvious network-layer counter — at the usual operational cost of
    managing static mappings, and it does nothing against an attacker who
    is already the gateway (compromised router / malicious AP).
    """
    rows = []
    for hardened in (False, True):
        tb = SmartHomeTestbed(seed=seed)
        base = tb.add_device("HS1")
        if hardened:
            base.host.arp.accept_unsolicited = False  # type: ignore[attr-defined]
            tb.router.arp.accept_unsolicited = False
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(base.host.ip)  # type: ignore[attr-defined]
        tb.run(35.0)
        operation = attacker.delay_next_event(
            base.host.ip,  # type: ignore[attr-defined]
            TimeoutBehavior.from_profile(base.profile),
            duration=20.0,
        )
        base.stimulate("armed-away")
        tb.run(30.0)
        events = tb.endpoints["ring"].events_from("hs1")
        delay = events[0][0] - events[0][1].device_time if events else None
        rows.append(
            StaticArpRow(
                hardened=hardened,
                hold_triggered=operation.triggered_at is not None,
                event_delay=delay,
            )
        )
    return rows


@dataclass
class RemediationResult:
    spuriously_unlocked: bool
    remediated: bool
    exposure: float | None

    @property
    def damage_prevented(self) -> bool:
        """The paper's verdict: never — the burglar is already inside."""
        return not self.spuriously_unlocked


def run_remediation_experiment(seed: int = 67) -> RemediationResult:
    """Case 8 under the remedial-action policy (Section VII-B's analysis).

    The server re-locks the door once the stale 'away' event exposes the
    spurious unlock — the experiment measures how long the house stood open.
    """
    from ..core.attacks.scenarios import Case8StormDoorUnlock
    from ..countermeasures.remediation import RemediationPolicy

    scenario = Case8StormDoorUnlock()
    tb = SmartHomeTestbed(seed=seed)
    ctx = scenario.build(tb)
    policy = RemediationPolicy(sim=tb.sim, engine=tb.integration.engine)
    policy.install()
    tb.settle(scenario.settle)
    attacker = PhantomDelayAttacker.deploy(tb)
    scenario.attack(tb, ctx, attacker)
    tb.run(scenario.observe)
    scenario.timeline(tb, ctx)
    tb.run(scenario.duration)
    lock = ctx["lock"]
    unlocked = any(name == "unlock" for _, name, _ in lock.actions_executed)
    return RemediationResult(
        spuriously_unlocked=unlocked,
        remediated=bool(policy.remediations),
        exposure=policy.remediations[0].exposure if policy.remediations else None,
    )


@dataclass
class DetectionResult:
    threshold: float
    detections: int
    detected: bool


def run_delay_detection(threshold: float = 10.0, seed: int = 53) -> DetectionResult:
    """Detection-only variant: an endpoint-side freshness monitor alarms."""
    tb = SmartHomeTestbed(seed=seed)
    base = tb.add_device("HS1")
    detector = DelayAnomalyDetector(
        sim=tb.sim, alarm_log=tb.alarms, threshold=threshold
    )
    detector.attach(tb.endpoints["ring"])
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    attacker.interpose(base.host.ip)  # type: ignore[attr-defined]
    tb.run(35.0)
    attacker.delay_next_event(
        base.host.ip,  # type: ignore[attr-defined]
        TimeoutBehavior.from_profile(base.profile),
        duration=25.0,
    )
    base.stimulate("armed-away")
    tb.run(40.0)
    return DetectionResult(
        threshold=threshold,
        detections=len(detector.detections),
        detected=bool(detector.detections),
    )


def render_countermeasures(
    ack_rows: list[AckTimeoutRow],
    traffic_rows: list[TrafficRow],
    ts_rows: list[TimestampDefenseRow],
    detection: DetectionResult,
    arp_rows: list[StaticArpRow] | None = None,
    remediation: RemediationResult | None = None,
) -> str:
    parts = []
    t1 = TextTable(
        ["Event-ACK timeout", "Predicted window", "Achieved delay", "Stealthy"],
        title="VII-A: shortening the message-ACK timeout shrinks the window",
    )
    for row in ack_rows:
        t1.add_row(
            "none (today)" if row.ack_timeout is None else f"{row.ack_timeout:.0f}s",
            fmt_window(row.predicted_window),
            f"{row.achieved_delay:.1f}s" if row.achieved_delay is not None else "-",
            "yes" if row.stealthy else "NO",
        )
    parts.append(t1.render())

    t2 = TextTable(
        ["KA period", "Residual window", "Analytic traffic", "Measured traffic", "Battery life"],
        title="VII-A limitation: keep-alive interval vs idle traffic and battery (per device)",
    )
    for row in traffic_rows:
        t2.add_row(
            f"{row.ka_period:g}s",
            fmt_window(row.predicted_window),
            f"{row.analytic_bytes_per_hour / 1024:.1f} KiB/h",
            f"{row.measured_bytes_per_hour / 1024:.1f} KiB/h"
            if row.measured_bytes_per_hour is not None
            else "-",
            f"{row.battery_days:.0f} days" if row.battery_days is not None else "-",
        )
    parts.append(t2.render())

    t3 = TextTable(
        ["Attack", "Freshness window", "Outcome", "Attack succeeded"],
        title="VII-B: timestamp checking stops only delayed-trigger spurious execution",
    )
    for row in ts_rows:
        t3.add_row(
            row.attack,
            "off" if row.window is None else f"{row.window:.0f}s",
            row.outcome,
            "yes" if row.attack_succeeded else "no",
        )
    parts.append(t3.render())

    parts.append(
        f"Detection-only monitor (threshold {detection.threshold:.0f}s): "
        f"{detection.detections} delayed-message alarms "
        f"({'attack detected' if detection.detected else 'missed'})."
    )

    if arp_rows:
        t4 = TextTable(
            ["ARP hardening", "Hijack interposed", "Event delay"],
            title="Extension: solicited-only ARP blocks the hijack itself",
        )
        for row in arp_rows:
            t4.add_row(
                "static/solicited-only" if row.hardened else "default (vulnerable)",
                row.hold_triggered,
                f"{row.event_delay:.1f}s" if row.event_delay is not None else "-",
            )
        parts.append(t4.render())

    if remediation is not None:
        parts.append(
            "VII-B remedial action on Case 8: "
            + (
                f"spurious unlock still happened; re-locked after "
                f"{remediation.exposure:.1f}s of exposure — damage bounded, not prevented."
                if remediation.remediated and remediation.exposure is not None
                else "no remediation observed."
            )
        )
    return "\n\n".join(parts)
