"""Experiment E1: regenerate Table I (cloud-connected device timeouts).

For every cloud profile, deploy a fresh home with that device, drop in the
attacker, run the Section IV-C profiling campaign through the hijacked
session, and report the measured parameters next to the catalogue ground
truth.  The row format mirrors the paper's Table I columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..analysis.reporting import TextTable, fmt_seconds, fmt_window
from ..core.attacker import PhantomDelayAttacker
from ..core.profiler import ProfileReport
from ..devices.base import HubChildDevice, HubDevice, IoTDevice
from ..devices.profiles import CATALOGUE, Catalogue, DeviceProfile, TABLE_CLOUD
from ..parallel import CampaignRunner, Shard
from ..testbed import SmartHomeTestbed


@dataclass
class MeasuredRow:
    """One device's measured-vs-expected timeout behaviour."""

    profile: DeviceProfile
    report: ProfileReport
    expected_event_window: tuple[float, float]
    expected_command_window: tuple[float, float] | None
    notes: list[str] = field(default_factory=list)

    @property
    def measured_event_window(self) -> tuple[float, float]:
        return self.report.behavior().event_delay_window()

    @property
    def measured_command_window(self) -> tuple[float, float] | None:
        if not self.profile.supports_commands:
            return None
        return self.report.behavior().command_delay_window()

    def matches_expectation(self, tolerance: float = 5.0) -> bool:
        """Measured windows agree with the catalogue within ``tolerance``."""
        def close(a: float, b: float) -> bool:
            if math.isinf(a) or math.isinf(b):
                return math.isinf(a) == math.isinf(b)
            return abs(a - b) <= tolerance

        lo_e, hi_e = self.measured_event_window
        exp_lo, exp_hi = self.expected_event_window
        if not (close(lo_e, exp_lo) and close(hi_e, exp_hi)):
            return False
        if self.expected_command_window is not None and self.measured_command_window is not None:
            lo_c, hi_c = self.measured_command_window
            exp_lo, exp_hi = self.expected_command_window
            if not (close(lo_c, exp_lo) and close(hi_c, exp_hi)):
                return False
        return True


def make_event_trigger(device: IoTDevice, catalogue: Catalogue, tb: SmartHomeTestbed):
    """A callable that makes 'the device' emit one event per invocation.

    Hubs themselves raise no events, so (as on the paper's testbed) a child
    device attached to the hub provides the stimulus, and the hub session
    is what gets measured.
    """
    if device.behavior.sensor_values:
        values = list(device.behavior.sensor_values)
        state = {"i": 0}

        def trigger() -> None:
            device.stimulate(values[state["i"] % len(values)])
            state["i"] += 1

        return trigger
    if isinstance(device, HubDevice):
        children = catalogue.children_of(device.profile.label)
        if children:
            child = tb.add_device(children[0].label)
            return make_event_trigger(child, catalogue, tb)
        # A hub with nothing paired still reports its own status events.
        return lambda: device.client.send_event(
            "status.heartbeat", wire_size=device.profile.event_size
        )
    client = getattr(device, "client", None)
    if client is not None:
        # No physical stimulus (e.g. a smart speaker): periodic status
        # reports are the device's natural event traffic.
        return lambda: client.send_event(
            "status.heartbeat", wire_size=device.profile.event_size
        )
    raise RuntimeError(f"{device.device_id} has no event source")


def make_command_trigger(device: IoTDevice, tb: SmartHomeTestbed):
    """A callable that makes the server send one command to the device."""
    endpoint = tb.endpoints[device.profile.server]

    def trigger() -> None:
        endpoint.send_command(device.device_id, "status-query")

    return trigger


def profile_label(
    label: str,
    trials: int = 3,
    seed: int = 7,
    catalogue: Catalogue | None = None,
    idle_window: float = 420.0,
) -> MeasuredRow:
    """Run the full measurement campaign against one cloud device."""
    catalogue = catalogue or CATALOGUE
    profile = catalogue.get(label, TABLE_CLOUD)
    tb = SmartHomeTestbed(seed=seed, catalogue=catalogue)
    device = tb.add_device(label)
    trigger_event = make_event_trigger(device, catalogue, tb)
    trigger_command = (
        make_command_trigger(device, tb) if profile.supports_commands else None
    )
    tb.settle(8.0)

    attacker = PhantomDelayAttacker.deploy(tb)
    uplink_ip = (
        device.hub.ip if isinstance(device, HubChildDevice) else device.host.ip  # type: ignore[attr-defined]
    )
    attacker.interpose(uplink_ip)
    profiler = attacker.profiler_for(uplink_ip, trigger_event, trigger_command)
    if not profile.long_live:
        profiler.max_wait = (profile.event_ack_timeout or 300.0) + 60.0
    report = profiler.profile(trials=trials, idle_window=idle_window)
    return MeasuredRow(
        profile=profile,
        report=report,
        expected_event_window=profile.event_delay_window(),
        expected_command_window=profile.command_delay_window(),
    )


def run_table1(
    labels: list[str] | None = None,
    trials: int = 3,
    seed: int = 7,
    catalogue: Catalogue | None = None,
    jobs: int | None = 1,
    runner: CampaignRunner | None = None,
    cache: Any = None,
    manifest: Any = True,
) -> list[MeasuredRow]:
    """Profile every (requested) cloud device; defaults to the full table.

    Each label is one shard; ``jobs`` (None = auto) fans them out across
    worker processes.  Per-label seeds are fixed (``seed + index``) and
    results merge in label order, so the rows — and the rendered table —
    are identical for every ``jobs`` value.  ``cache`` (True, or a
    :class:`~repro.cache.CampaignCache`) reuses content-addressed results
    from previous runs.
    """
    catalogue = catalogue or CATALOGUE
    if labels is None:
        labels = [p.label for p in catalogue.cloud_profiles()]
    shards = [
        Shard(
            key=f"table1/{label}",
            fn=profile_label,
            kwargs={
                "label": label,
                "trials": trials,
                # The default catalogue is importable in every worker; only
                # a caller-supplied one needs to travel with the shard.
                "catalogue": None if catalogue is CATALOGUE else catalogue,
            },
            seed=seed + i,
        )
        for i, label in enumerate(labels)
    ]
    runner = runner or CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="table1", cache=cache,
        manifest=manifest,
    )
    return runner.run(shards)


def render_table1(rows: list[MeasuredRow]) -> str:
    table = TextTable(
        [
            "Label", "Device Model", "Conn", "Downloads",
            "KA period/pattern", "KA timeout", "Event TO", "Cmd TO",
            "e-Delay window", "c-Delay window", "Matches",
        ],
        title="Table I — measured timeout behaviour of cloud-connected devices",
    )
    for row in rows:
        report = row.report
        ka = (
            f"{report.ka_period:.0f}s/{report.ka_strategy}"
            if report.ka_period is not None
            else "on-demand"
        )
        table.add_row(
            row.profile.label,
            row.profile.model,
            row.profile.connection,
            row.profile.app_downloads,
            ka,
            fmt_seconds(report.ka_timeout, 0),
            fmt_seconds(report.event_timeout, 0),
            fmt_seconds(report.command_timeout, 0) if row.profile.supports_commands else "-",
            fmt_window(row.measured_event_window),
            fmt_window(row.measured_command_window),
            "yes" if row.matches_expectation() else "NO",
        )
    return table.render()
