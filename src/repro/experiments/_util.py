"""Small shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..devices.base import HubChildDevice, IoTDevice

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator


def run_until(sim: "Simulator", predicate: Callable[[], bool], timeout: float) -> bool:
    """Advance the simulation until ``predicate`` holds or ``timeout`` passes."""
    deadline = sim.now + timeout
    while not predicate():
        nxt = sim.peek()
        if nxt is None or nxt > deadline:
            sim.run_until(deadline)
            return predicate()
        sim.step()
    return True


def uplink_ip_of(device: IoTDevice) -> str:
    """The LAN address whose TCP session carries this device's messages."""
    if isinstance(device, HubChildDevice):
        return device.hub.ip
    return device.host.ip  # type: ignore[attr-defined]
