"""Small shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..devices.base import HubChildDevice, IoTDevice

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator


def run_until(sim: "Simulator", predicate: Callable[[], bool], timeout: float) -> bool:
    """Advance the simulation until ``predicate`` holds or ``timeout`` passes.

    The predicate is re-evaluated per simulated *instant*, not per event:
    each pass batch-steps to the next event's timestamp (which fires every
    event scheduled at that instant in one fused scheduler loop) and only
    then re-checks.  Predicates are functions of simulation state that
    changes when events fire, so checking between two events of the same
    instant buys nothing — it was the dominant Python-level overhead of the
    profiling campaigns.
    """
    deadline = sim.now + timeout
    while not predicate():
        nxt = sim.peek()
        if nxt is None or nxt > deadline:
            sim.run_until(deadline)
            return predicate()
        sim.run_until(nxt)
    return True


def uplink_ip_of(device: IoTDevice) -> str:
    """The LAN address whose TCP session carries this device's messages."""
    if isinstance(device, HubChildDevice):
        return device.hub.ip
    return device.host.ip  # type: ignore[attr-defined]
