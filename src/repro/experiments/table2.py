"""Experiment E2: regenerate Table II (HomeKit-paired devices).

Same campaign as Table I but against the local server: devices speak
HAP-style sessions to the HomePod, both ends sit on the LAN, and — the
table's headline — event messages are never acknowledged, so every event
row comes out '∞'.  The profiler concludes '∞' when no timeout occurs
within its observation bound; the bound itself is the *measured floor* we
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.reporting import TextTable, fmt_seconds, fmt_window
from ..core.attacker import PhantomDelayAttacker
from ..core.profiler import ProfileReport
from ..devices.profiles import CATALOGUE, Catalogue, TABLE_LOCAL, DeviceProfile
from ..parallel import CampaignRunner, Shard
from ..testbed import SmartHomeTestbed
from .table1 import make_event_trigger

#: How long each Table II trial waits before concluding 'no timeout'.
LOCAL_TRIAL_BOUND = 300.0


@dataclass
class LocalMeasuredRow:
    profile: DeviceProfile
    report: ProfileReport
    event_unbounded: bool
    observed_floor: float  # delay sustained without any timeout

    @property
    def matches_expectation(self) -> bool:
        # Every HAP event is expected to be delayable without bound.
        return self.event_unbounded


def profile_local_label(
    label: str,
    trials: int = 2,
    seed: int = 11,
    catalogue: Catalogue | None = None,
) -> LocalMeasuredRow:
    catalogue = catalogue or CATALOGUE
    profile = catalogue.get(label, TABLE_LOCAL)
    tb = SmartHomeTestbed(seed=seed, catalogue=catalogue)
    device = tb.add_device(label, table=TABLE_LOCAL)
    trigger_event = make_event_trigger(device, catalogue, tb)
    tb.settle(8.0)

    attacker = PhantomDelayAttacker.deploy(tb)
    server = tb.ensure_local_server()
    attacker.interpose(device.host.ip, peer_ip=server.ip)  # type: ignore[attr-defined]
    profiler = attacker.profiler_for(device.host.ip, trigger_event)  # type: ignore[attr-defined]
    profiler.max_wait = LOCAL_TRIAL_BOUND
    # HAP sessions are idle unless events flow: a short observation window
    # suffices to confirm there is no keep-alive.
    report = profiler.profile(trials=trials, idle_window=90.0)
    event_unbounded = report.event_timeout is None and not any(
        t.measured is not None for t in report.event_trials
    )
    return LocalMeasuredRow(
        profile=profile,
        report=report,
        event_unbounded=event_unbounded,
        observed_floor=LOCAL_TRIAL_BOUND if event_unbounded else (
            max((t.measured or 0.0) for t in report.event_trials)
        ),
    )


def run_table2(
    labels: list[str] | None = None,
    trials: int = 2,
    seed: int = 11,
    catalogue: Catalogue | None = None,
    jobs: int | None = 1,
    runner: CampaignRunner | None = None,
    cache: Any = None,
    manifest: Any = True,
) -> list[LocalMeasuredRow]:
    """One shard per HomeKit label; seeds and row order match a serial run."""
    catalogue = catalogue or CATALOGUE
    if labels is None:
        labels = [p.label for p in catalogue.local_profiles()]
    shards = [
        Shard(
            key=f"table2/{label}",
            fn=profile_local_label,
            kwargs={
                "label": label,
                "trials": trials,
                "catalogue": None if catalogue is CATALOGUE else catalogue,
            },
            seed=seed + i,
        )
        for i, label in enumerate(labels)
    ]
    runner = runner or CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="table2", cache=cache,
        manifest=manifest,
    )
    return runner.run(shards)


def render_table2(rows: list[LocalMeasuredRow]) -> str:
    table = TextTable(
        ["Label", "Device Model", "Event size (B)", "Event delay", "Sustained >=", "Matches"],
        title="Table II — devices paired to a local IoT server (HomePod)",
    )
    for row in rows:
        table.add_row(
            row.profile.label,
            row.profile.model,
            row.report.event_size if row.report.event_size is not None else "-",
            "∞" if row.event_unbounded else fmt_window(
                row.report.behavior().event_delay_window()
            ),
            fmt_seconds(row.observed_floor, 0),
            "yes" if row.matches_expectation else "NO",
        )
    return table.render()
