"""Extension experiment: device-recognition accuracy of the sniffing step.

Clarification II of the paper argues an attacker need only profile popular
models to recognise a large share of deployments.  This experiment measures
the fingerprint database's top-1 accuracy: build homes containing mixed
device sets, let the attacker sniff passively (with a little natural
activity so event-length fingerprints appear), and check whether the best
match identifies the right model.

Hub *children* are scored against the flow they ride: recognising the Ring
contact sensor on the base station's session requires its event length to
have been observed — which is also exactly the attacker's operational
requirement before arming a size-triggered hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.reporting import TextTable
from ..core.attacker import PhantomDelayAttacker
from ..core.fingerprint import extract_observation
from ..devices.base import HubChildDevice
from ..testbed import SmartHomeTestbed

#: Mixed homes used for the accuracy measurement: (wifi devices, hub children).
DEFAULT_HOMES: tuple[tuple[str, ...], ...] = (
    ("P2", "HS1", "C1"),
    ("L3", "M7", "T1"),
    ("HS3", "V1", "SM1"),
    ("CM1", "P4", "C5"),
    ("C2", "L2", "LK1"),
)


@dataclass
class RecognitionRow:
    device_id: str
    expected_label: str
    recognised_label: str | None
    correct: bool
    score: float | None


@dataclass
class RecognitionReport:
    rows: list[RecognitionRow] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.correct for r in self.rows) / len(self.rows)


def run_recognition(
    homes: tuple[tuple[str, ...], ...] = DEFAULT_HOMES,
    sniff_window: float = 400.0,  # >= 3 keep-alives of the slowest (Hue: 120 s)
    seed: int = 211,
) -> RecognitionReport:
    report = RecognitionReport()
    for i, labels in enumerate(homes):
        report.rows.extend(_survey_home(labels, sniff_window, seed=seed + i))
    return report


def _survey_home(labels: tuple[str, ...], window: float, seed: int) -> list[RecognitionRow]:
    tb = SmartHomeTestbed(seed=seed)
    devices = [tb.add_device(label) for label in labels]
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)

    # Natural activity so event-length fingerprints show up in the window.
    for offset, device in enumerate(devices):
        if device.behavior.sensor_values:
            tb.sim.schedule(
                20.0 + 11.0 * offset, device.stimulate, device.behavior.sensor_values[0]
            )

    rows: list[RecognitionRow] = []
    attacker.capture.clear()
    tb.run(window)
    for device in devices:
        uplink_ip = (
            device.hub.ip if isinstance(device, HubChildDevice) else device.host.ip  # type: ignore[attr-defined]
        )
        matches: list = []
        for observation in extract_observation(attacker.capture, uplink_ip, tb.internet.dns):
            matches.extend(attacker.database.match_flow(observation))
        matches.sort(key=lambda m: -m.score)
        # For a hub child, the right answer is the child (its event length
        # was seen); for the hub's own row the hub label.
        expected = device.profile.label
        candidates = [m for m in matches if m.signature.table == device.profile.table]
        best = candidates[0] if candidates else None
        recognised = None
        score = None
        if best is not None:
            # Among equal-scoring matches prefer one that names the device.
            top = [m for m in candidates if m.score == best.score]
            hit = next((m for m in top if m.signature.label == expected), None)
            chosen = hit or best
            recognised, score = chosen.signature.label, chosen.score
        rows.append(
            RecognitionRow(
                device_id=device.device_id,
                expected_label=expected,
                recognised_label=recognised,
                correct=recognised == expected,
                score=score,
            )
        )
    return rows


def render_recognition(report: RecognitionReport) -> str:
    table = TextTable(
        ["Device", "Expected", "Recognised", "Score", "Correct"],
        title=(
            f"Device recognition from encrypted traffic — top-1 accuracy "
            f"{report.accuracy * 100:.0f}%"
        ),
    )
    for row in report.rows:
        table.add_row(
            row.device_id,
            row.expected_label,
            row.recognised_label or "-",
            f"{row.score:.1f}" if row.score is not None else "-",
            "yes" if row.correct else "NO",
        )
    return table.render()
