"""Ablations of the attack-design choices DESIGN.md calls out.

* **Forged ACKs** — the middle-box's defining trick.  Without them, the
  sender's retransmission timer fires, retries are swallowed by the hold,
  and the connection dies loudly: the delay degenerates into a detectable
  denial of service (the contrast with jamming in Section I).
* **Release margin** — the paper releases 2 s before the predicted
  timeout.  Sweeping the margin shows the trade-off: a zero margin rides
  the edge (latency jitter can tip it over), large margins sacrifice
  window.
* **Keep-alive pattern** — fixed-period sessions give a *phase-dependent*
  window (Hue's [60 s, 180 s]); on-idle sessions give the attacker the
  maximum whenever the trigger follows a keep-alive exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.reporting import TextTable, fmt_window
from ..core.attacker import PhantomDelayAttacker
from ..core.hijacker import TcpHijacker
from ..core.predictor import TimeoutBehavior
from ..devices.profiles import CATALOGUE
from ..parallel import CampaignRunner, Shard
from ..testbed import SmartHomeTestbed
from ._util import run_until


class NoForgeHijacker(TcpHijacker):
    """Ablated middle-box: holds packets but never forges ACKs."""

    def _forge_ack(self, packet, segment, tracker, hold) -> None:
        hold.forged_acks += 0  # deliberately silent


@dataclass
class ForgedAckRow:
    forge_acks: bool
    retransmissions: int
    achieved_delay: float | None
    event_delivered: bool
    alarms: int

    @property
    def stealthy(self) -> bool:
        return self.alarms == 0


def _forged_ack_case(forge: bool, hold_for: float, seed: int) -> ForgedAckRow:
    """One shard: a 25 s event delay with or without ACK forging."""
    tb = SmartHomeTestbed(seed=seed)
    contact = tb.add_device("C2")
    hub = tb.devices["h1"]
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    if not forge:
        attacker.hijacker = NoForgeHijacker(attacker.host)
    attacker.interpose(hub.ip)
    tb.run(35.0)
    operation = attacker.delay_next_event(
        hub.ip,
        TimeoutBehavior.from_profile(hub.profile),
        duration=hold_for,
        trigger_size=contact.profile.event_size,
        clamp=False,
    )
    alarms_before = tb.alarms.count()
    contact.stimulate("open")
    tb.run(hold_for + 40.0)
    conns = hub.stack.connections()
    retrans = sum(c.stats["retransmissions"] for c in conns)
    return ForgedAckRow(
        forge_acks=forge,
        # A connection that died mid-ablation takes its counters
        # with it; the session-loss count is the surviving proxy.
        retransmissions=retrans if forge else max(retrans, _retrans_proxy(tb, hub)),
        achieved_delay=operation.achieved_delay,
        event_delivered=bool(tb.endpoints["smartthings"].events_from("c2")),
        alarms=tb.alarms.count() - alarms_before,
    )


def run_forged_ack_ablation(
    seed: int = 71, hold_for: float = 25.0, jobs: int | None = 1, cache: Any = None,
    manifest: Any = True,
) -> list[ForgedAckRow]:
    """The same 25 s event delay with and without ACK forging."""
    runner = CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="ablation-forged-ack", cache=cache,
        manifest=manifest,
    )
    return runner.run(
        [
            Shard(
                key=f"forged-ack/{'on' if forge else 'off'}",
                fn=_forged_ack_case,
                kwargs={"forge": forge, "hold_for": hold_for},
                seed=seed,
            )
            for forge in (True, False)
        ]
    )


def _retrans_proxy(tb: SmartHomeTestbed, hub) -> int:
    """Retransmissions survive in the session-loss count once conns close."""
    return len(hub.client.session_losses)


@dataclass
class MarginRow:
    margin: float
    trials: int
    timeouts_avoided: int
    mean_achieved: float


def _margin_case(margin: float, trials: int, seed: int) -> MarginRow:
    """One shard: avoidance rate at a single release margin."""
    avoided = 0
    achieved: list[float] = []
    tb = SmartHomeTestbed(seed=seed)
    contact = tb.add_device("C2")
    hub = tb.devices["h1"]
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb, margin=margin)
    attacker.interpose(hub.ip)
    tb.run(40.0)
    behavior = TimeoutBehavior.from_profile(hub.profile)
    primitive = attacker.e_delay(hub.ip, behavior)
    for _ in range(trials):
        tb.run(5.0 + tb.sim.rng.random() * 30.0)
        operation = primitive.arm(trigger_size=contact.profile.event_size)
        contact.stimulate("open" if contact.attribute_value == "closed" else "closed")
        run_until(tb.sim, lambda: operation.released_at is not None, 200.0)
        tb.run(5.0)
        mark = operation.triggered_at or 0.0
        closes = attacker.hijacker.close_events_involving(hub.ip, since=mark)
        if operation.stealthy and not closes:
            avoided += 1
        achieved.append(operation.achieved_delay or 0.0)
        tb.run(30.0)
    return MarginRow(
        margin=margin,
        trials=trials,
        timeouts_avoided=avoided,
        mean_achieved=sum(achieved) / len(achieved),
    )


def run_margin_sweep(
    margins: tuple[float, ...] = (0.0, 0.5, 2.0, 5.0, 10.0),
    trials: int = 4,
    seed: int = 73,
    jobs: int | None = 1,
    cache: Any = None,
    manifest: Any = True,
) -> list[MarginRow]:
    """Avoidance rate and achieved delay as the release margin varies."""
    runner = CampaignRunner(
        jobs=jobs, base_seed=seed, campaign="ablation-margin", cache=cache,
        manifest=manifest,
    )
    return runner.run(
        [
            Shard(
                key=f"margin/{margin:g}",
                fn=_margin_case,
                kwargs={"margin": margin, "trials": trials},
                seed=seed + i,
            )
            for i, margin in enumerate(margins)
        ]
    )


@dataclass
class PatternRow:
    label: str
    pattern: str
    window: tuple[float, float]

    @property
    def spread(self) -> float:
        return self.window[1] - self.window[0]


def run_pattern_comparison() -> list[PatternRow]:
    """Fixed vs on-idle keep-alive pattern: the window's phase spread."""
    rows = []
    for label in ("H1", "H2", "L3"):
        profile = CATALOGUE.get(label)
        rows.append(
            PatternRow(
                label=label,
                pattern=profile.ka_strategy,
                window=profile.event_delay_window(),
            )
        )
    return rows


def render_ablations(
    forge_rows: list[ForgedAckRow],
    margin_rows: list[MarginRow],
    pattern_rows: list[PatternRow],
) -> str:
    parts = []
    t1 = TextTable(
        ["Forged ACKs", "Sender retransmits/losses", "Event delivered", "Alarms", "Stealthy"],
        title="Ablation 1 — forged ACKs are what keep the delay silent",
    )
    for row in forge_rows:
        t1.add_row(
            "on" if row.forge_acks else "off (ablated)",
            row.retransmissions,
            row.event_delivered,
            row.alarms,
            "yes" if row.stealthy else "NO",
        )
    parts.append(t1.render())

    t2 = TextTable(
        ["Release margin", "Trials", "Timeouts avoided", "Mean achieved delay"],
        title="Ablation 2 — release margin vs avoidance (paper uses 2 s)",
    )
    for row in margin_rows:
        t2.add_row(
            f"{row.margin:g}s", row.trials,
            f"{row.timeouts_avoided}/{row.trials}", f"{row.mean_achieved:.1f}s",
        )
    parts.append(t2.render())

    t3 = TextTable(
        ["Device", "KA pattern", "e-Delay window", "Phase spread"],
        title="Ablation 3 — keep-alive pattern shapes the window",
    )
    for row in pattern_rows:
        t3.add_row(row.label, row.pattern, fmt_window(row.window), f"{row.spread:.0f}s")
    parts.append(t3.render())
    return "\n\n".join(parts)
