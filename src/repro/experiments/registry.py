"""Registry mapping campaign-spec experiment names to their drivers.

The campaign service (``repro.service``) accepts JSON specs that name an
experiment; this table is the one place such a name resolves to a driver,
a renderer, and the exit-status rule the one-shot CLI applies to the same
rows.  Keeping all three together is what makes a served result provably
equivalent to ``phantom-delay <experiment>``: both sides call the same
driver with the same kwargs/seed and render with the same function.

Every registered ``run`` callable accepts ``**kwargs`` from the spec plus
``seed=`` and ``runner=`` (a pre-built :class:`~repro.parallel.CampaignRunner`
carrying the service's shared pool, cache policy, per-job manifest path,
cancel signal, and progress observer).  Tests may :func:`register` their
own experiments and :func:`unregister` them afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: driver + renderer + CLI status rule."""

    name: str
    run: Callable[..., Any]
    render: Callable[[Any], str]
    #: Maps the driver's result to the exit status the one-shot CLI would
    #: return for it (0 = every row matched expectations).
    status: Callable[[Any], int]
    description: str = ""


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec, replace: bool = False) -> ExperimentSpec:
    """Add an experiment; refuses to shadow an existing name by accident."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            + ", ".join(experiment_names())
        ) from None


def experiment_names() -> list[str]:
    return sorted(_REGISTRY)


def _all_pass(predicate: Callable[[Any], bool]) -> Callable[[Any], int]:
    return lambda rows: 0 if all(predicate(r) for r in rows) else 1


def _register_builtins() -> None:
    from .robustness import render_robustness, run_robustness
    from .table1 import render_table1, run_table1
    from .table2 import render_table2, run_table2
    from .table3 import render_table3, run_figure3, run_table3
    from .verification import render_verification, run_verification

    register(ExperimentSpec(
        name="table1",
        run=run_table1,
        render=render_table1,
        status=_all_pass(lambda r: r.matches_expectation()),
        description="Table I: cloud device timeout profiling",
    ))
    register(ExperimentSpec(
        name="table2",
        run=run_table2,
        render=render_table2,
        status=_all_pass(lambda r: r.matches_expectation),
        description="Table II: HomeKit device profiling",
    ))
    register(ExperimentSpec(
        name="table3",
        run=run_table3,
        render=render_table3,
        status=_all_pass(lambda r: r.consequence_reproduced and r.stealthy),
        description="Table III: the 11 PoC attack cases",
    ))
    register(ExperimentSpec(
        name="figure3",
        run=run_figure3,
        render=lambda rows: render_table3(
            rows, title="Figure 3 — the four illustrated attacks"
        ),
        status=_all_pass(lambda r: r.consequence_reproduced and r.stealthy),
        description="Figure 3: the four illustrated attacks",
    ))
    register(ExperimentSpec(
        name="verify",
        run=run_verification,
        render=render_verification,
        status=_all_pass(lambda r: r.success_rate == 1.0),
        description="Section VI-C verification test",
    ))
    register(ExperimentSpec(
        name="robustness",
        run=run_robustness,
        render=render_robustness,
        status=_all_pass(lambda r: r.success and r.violations == 0),
        description="attack success over a loss x jitter grid",
    ))


_register_builtins()
