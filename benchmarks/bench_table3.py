"""Bench E3: regenerate Table III — the 11 PoC attack cases.

Each case runs twice (identical timeline, with and without the attacker);
the reproduction criterion is the paper's consequence column *and* stealth:
the attacked run must raise zero alarms of any kind.
"""

from __future__ import annotations

from repro.experiments.table3 import render_table3, run_table3


def test_table3_all_cases(once):
    rows = once(run_table3, seed=3)
    print()
    print(render_table3(rows))
    assert len(rows) == 11
    failures = [
        r.scenario.case_id
        for r in rows
        if not (r.consequence_reproduced and r.stealthy)
    ]
    assert not failures, f"cases not reproduced: {failures}"
