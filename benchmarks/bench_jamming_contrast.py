"""Bench (extension): the introduction's contrast with jamming.

The same 25 s of interference three ways: the phantom delay is the only
variant with zero retransmissions, zero reconnects, zero alarms — and the
message still arrives.  Packet discarding (jamming's effect) leaves a
visible retransmission storm and may lose the message outright.
"""

from __future__ import annotations

from repro.experiments.jamming_contrast import (
    render_jamming_contrast,
    run_jamming_contrast,
)


def test_jamming_contrast(once):
    rows = once(run_jamming_contrast)
    print()
    print(render_jamming_contrast(rows))
    by_mode = {row.mode: row for row in rows}
    phantom = by_mode["phantom-delay"]
    assert phantom.silent and phantom.event_delivered
    assert phantom.delivery_delay > 20.0
    # Both discarding variants leave visible artifacts.
    for mode in ("drop-segments", "drop-all"):
        assert not by_mode[mode].silent, mode
    assert by_mode["drop-all"].retransmissions >= 3
