"""Bench E8: the content-addressed campaign cache — cold vs warm Table I.

Runs the same Table I subset twice against a fresh cache directory: the
cold pass simulates and stores every shard, the warm pass must answer
entirely from disk.  Asserts the rendered tables are byte-identical and
that the warm pass ran zero live simulations, then records both wall
clocks plus the speedup to ``BENCH_campaign.json``.

Cold time is dominated by the simulations themselves, so the speedup
here is the honest headline of ``repro.cache``: what a re-run of the
paper's evaluation costs once the results already exist.
"""

from __future__ import annotations

import tempfile
import time

from repro.cache import CampaignCache
from repro.experiments.table1 import render_table1, run_table1
from repro.obs.metrics import MetricsRegistry
from repro.parallel import CampaignRunner

from _perf import baseline_matches, check_regression, record_bench
from conftest import bench_trials

#: Same representative slice as bench_parallel, for comparable numbers.
LABELS = ["HS1", "HS2", "C2", "M7", "HS3", "P1"]


def _warm_run(cache: CampaignCache, trials: int, registry: MetricsRegistry):
    runner = CampaignRunner(jobs=1, base_seed=7, registry=registry,
                            campaign="table1", cache=cache)
    return run_table1(labels=LABELS, trials=trials, seed=7, runner=runner)


def test_table1_cache_roundtrip(once):
    trials = min(bench_trials(), 20)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        cache = CampaignCache(root=root)

        start = time.perf_counter()
        cold_rows = run_table1(labels=LABELS, trials=trials, seed=7,
                               jobs=1, cache=cache)
        cold_s = time.perf_counter() - start

        registry = MetricsRegistry()
        start = time.perf_counter()
        warm_rows = once(_warm_run, cache, trials, registry)
        warm_s = time.perf_counter() - start

    # The whole point: a warm campaign answers from disk, byte-identically.
    assert render_table1(warm_rows) == render_table1(cold_rows)
    assert registry.value("parallel", "cache_hits", campaign="table1") == len(LABELS)
    assert registry.value("parallel", "shards_run_inprocess", campaign="table1") == 0

    speedup = cold_s / warm_s if warm_s else 0.0
    entry = record_bench(
        "table1_cache",
        labels=LABELS,
        trials=trials,
        cold_seconds=round(cold_s, 3),
        warm_seconds=round(warm_s, 3),
        speedup=round(speedup, 1),
    )
    print()
    print(render_table1(warm_rows))
    print(f"cold {cold_s:.2f}s vs warm {warm_s:.3f}s ({speedup:.0f}x) -> {entry}")
    # The warm/cold ratio swings with disk and CPU — and scales with the
    # trial count, since only the cold side grows — so the gate compares
    # like workloads only and fails just on an order-of-magnitude collapse
    # (e.g. warm runs re-simulating).
    if baseline_matches("table1_cache", trials=trials):
        check_regression("table1_cache", "speedup", speedup, tolerance=0.9)
