"""Bench E1: regenerate Table I — timeout profiling of 36 cloud devices.

Runs the full Section IV-C measurement campaign (idle observation,
keep-alive pattern detection, delay-until-timeout trials for keep-alive /
event / command messages) against every cloud profile and prints the table.
The reproduction criterion: every measured row matches its catalogue ground
truth (the anchored cells — SmartThings 31 s/16 s/∞, Hue 120 s-fixed/60 s/21 s,
Ring ≥60 s, SimpliSafe keypad <30 s, on-demand sensors >2 min — inclusive).
"""

from __future__ import annotations

from repro.experiments.table1 import render_table1, run_table1

from conftest import bench_trials


def test_table1_full_campaign(once):
    rows = once(run_table1, trials=min(bench_trials(), 20))
    print()
    print(render_table1(rows))
    assert len(rows) == 36
    mismatches = [r.profile.label for r in rows if not r.matches_expectation()]
    assert not mismatches, f"rows diverge from ground truth: {mismatches}"

    # Paper headline: every event delayable >30 s except the SimpliSafe keypad.
    for row in rows:
        hi = row.measured_event_window[1]
        if row.profile.label == "HS3":
            assert hi < 30.0
        else:
            assert hi > 30.0
