"""Bench E4: regenerate Figure 3 — the four illustrated attacks.

(a) delayed smoke alert, (b) delayed water-valve shut-off with combined
e-Delay + c-Delay, (c) the storm-door spurious unlock, (d) the disabled
auto-lock.
"""

from __future__ import annotations

from repro.experiments.table3 import render_table3, run_figure3


def test_figure3_scenarios(once):
    rows = once(run_figure3, seed=3)
    print()
    print(render_table3(rows, title="Figure 3 — the four illustrated attacks"))
    assert len(rows) == 4
    assert all(r.consequence_reproduced and r.stealthy for r in rows)

    by_case = {r.scenario.case_id: r for r in rows}
    # 3(a): the smoke alert arrives dozens of seconds late but does arrive.
    smoke = by_case["Fig 3a"].attacked.metrics
    assert smoke["alert_delivered"] and smoke["alert_latency"] > 20.0
    # 3(b): trigger + command delays combine.
    valve = by_case["Fig 3b"].attacked.metrics
    assert valve["combined_window"] > 15.0
