"""Bench: the fleet engine — a sampled home population, end to end.

Runs one fleet of ``REPRO_BENCH_HOMES`` homes (default 64) serially and
across a worker pool, asserts the per-home digests are byte-identical (the
fleet determinism contract), and records homes/sec plus peak-RSS-per-home
into ``BENCH_campaign.json`` under the regression gate.  Throughput is the
number that tracks the "millions of homes" north star; RSS-per-home is
what bounds how many homes one worker can batch.
"""

from __future__ import annotations

import os
import time

from repro.fleet import FleetRunner
from repro.parallel import fork_available

from _perf import baseline_matches, check_regression, cpu_comparable, record_bench
from conftest import bench_jobs


def bench_homes(default: int = 64) -> int:
    return int(os.environ.get("REPRO_BENCH_HOMES", default))


def _run(homes: int, jobs: int):
    runner = FleetRunner(homes=homes, base_seed=0, jobs=jobs,
                         cache=False, manifest=False)
    start = time.perf_counter()
    report = runner.run(keep_rows=False)
    wall = time.perf_counter() - start
    peak_rss_kb = max(
        (row.peak_rss_kb for row in runner.runner.last_shard_rows), default=0
    )
    return report, wall, peak_rss_kb


def test_fleet_campaign(once):
    homes = bench_homes()
    jobs = bench_jobs()

    serial_report, serial_s, serial_rss = _run(homes, 1)
    parallel_report, parallel_s, parallel_rss = once(_run, homes, jobs)

    # The determinism contract: worker count must not move a single home.
    assert parallel_report.digests == serial_report.digests
    assert parallel_report.completed == homes

    homes_per_sec = homes / parallel_s if parallel_s else 0.0
    peak_rss_kb = max(serial_rss, parallel_rss)
    rss_kb_per_home = peak_rss_kb / homes if homes else 0.0
    entry = record_bench(
        "fleet",
        homes=homes,
        jobs=jobs,
        serial_seconds=round(serial_s, 3),
        parallel_seconds=round(parallel_s, 3),
        homes_per_sec=round(homes_per_sec, 1),
        serial_homes_per_sec=round(homes / serial_s if serial_s else 0.0, 1),
        events=parallel_report.events,
        attacked_homes=parallel_report.attacked,
        peak_rss_kb=peak_rss_kb,
        rss_kb_per_home=round(rss_kb_per_home, 1),
        fork_available=fork_available(),
    )
    print()
    print(f"fleet: {homes} homes, {parallel_report.events} events, "
          f"{parallel_report.attacked} attacked")
    print(f"serial {serial_s:.2f}s vs jobs={jobs} {parallel_s:.2f}s; "
          f"{homes_per_sec:.1f} homes/s, {rss_kb_per_home:.0f} KiB RSS/home "
          f"-> {entry}")
    # Throughput is hardware-bound: gate only against a baseline that
    # measured the same workload on a comparable machine.  The serial
    # number gates a per-home fixed-cost regression; the parallel one
    # additionally needs matching jobs.
    if baseline_matches("fleet", homes=homes):
        check_regression("fleet", "serial_homes_per_sec",
                         homes / serial_s if serial_s else 0.0)
    if cpu_comparable("fleet") and baseline_matches("fleet", homes=homes,
                                                    jobs=jobs):
        check_regression("fleet", "homes_per_sec", homes_per_sec)
