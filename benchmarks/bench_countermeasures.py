"""Bench E7/E8: the Section VII countermeasures and their limitations.

E7 (VII-A): mandating message ACKs with short timeouts shrinks the attack
window to roughly (timeout − margin); shortening keep-alive intervals
instead inflates idle traffic hyperbolically (the LIFX cautionary tale).

E8 (VII-B): timestamp checking stops spurious execution via a *delayed
trigger* but neither condition-delay attacks (Case 8) nor pure delay
attacks (Case 1).
"""

from __future__ import annotations

from repro.experiments.countermeasures import (
    render_countermeasures,
    run_ack_timeout_sweep,
    run_delay_detection,
    run_keepalive_cost_curve,
    run_remediation_experiment,
    run_static_arp_defense,
    run_timestamp_defense,
)


def _run_all():
    return (
        run_ack_timeout_sweep(),
        run_keepalive_cost_curve(),
        run_timestamp_defense(),
        run_delay_detection(),
        run_static_arp_defense(),
        run_remediation_experiment(),
    )


def test_countermeasures(once):
    ack_rows, traffic_rows, ts_rows, detection, arp_rows, remediation = once(_run_all)
    print()
    print(
        render_countermeasures(
            ack_rows, traffic_rows, ts_rows, detection, arp_rows, remediation
        )
    )

    # Extension: ARP hardening blocks the hijack before it begins.
    assert arp_rows[0].attack_succeeded and not arp_rows[1].attack_succeeded

    # VII-B: remediation bounds the exposure but never prevents the unlock.
    assert remediation.spuriously_unlocked and remediation.remediated
    assert remediation.exposure > 10.0
    # Battery cost: sub-2 s keep-alives drain a sensor battery within a month.
    assert any(r.battery_days is not None and r.battery_days < 31 for r in traffic_rows)

    # VII-A: the measured window tracks the mandated timeout and shrinks
    # monotonically, while the attack stays stealthy inside it.
    achieved = [row.achieved_delay for row in ack_rows]
    assert achieved == sorted(achieved, reverse=True)
    assert all(row.stealthy for row in ack_rows)

    # VII-A limitation: traffic grows as the keep-alive period shrinks.
    rates = [row.analytic_bytes_per_hour for row in traffic_rows]
    assert rates == sorted(rates)
    measured = [r for r in traffic_rows if r.measured_bytes_per_hour is not None]
    for row in measured:
        assert row.measured_bytes_per_hour == __import__("pytest").approx(
            row.analytic_bytes_per_hour, rel=0.25
        )

    # VII-B asymmetry.
    by_key = {(r.attack, r.window): r.attack_succeeded for r in ts_rows}
    assert not by_key[("spurious via delayed trigger", 10.0)]
    assert by_key[("spurious via delayed condition (Case 8)", 10.0)]
    assert by_key[("state-update delay (Case 1)", 10.0)]

    assert detection.detected
