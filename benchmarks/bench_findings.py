"""Bench E6: Findings 1-3 of the evaluation.

1. Half-open connections postpone 'device offline' alarms.
2. Events delayed past the integration window are silently discarded.
3. Liveness checking is unidirectional: the server initiates nothing.
"""

from __future__ import annotations

from repro.experiments.findings import (
    finding1_half_open,
    finding2_event_discard,
    finding3_unidirectional_liveness,
    render_findings,
)


def _run_all():
    return (
        finding1_half_open(),
        finding2_event_discard(),
        finding3_unidirectional_liveness(),
    )


def test_findings(once):
    f1, f2, f3 = once(_run_all)
    print()
    print(render_findings(f1, f2, f3))
    assert f1.reproduced
    assert f3.reproduced
    # Finding 2: a clean cliff at the 30 s window, silent on both sides.
    for row in f2:
        assert row.delivered_to_engine == (row.delay <= 30.0)
        assert row.alarms == 0
