"""Bench E7: the parallel campaign runner — Table I sharded across workers.

Runs the same Table I subset twice — serially (``jobs=1``) and sharded
across a worker pool (``jobs=REPRO_BENCH_JOBS`` or CPU count) — asserts the
rendered tables are byte-identical, and records both wall clocks plus the
speedup to ``BENCH_campaign.json``.

The determinism assertion is the hard guarantee of ``repro.parallel``; the
speedup is hardware-bound (on a 1-CPU runner fork overhead makes it < 1x),
so it is recorded alongside ``cpu_count`` rather than asserted when the
machine cannot physically provide parallelism.
"""

from __future__ import annotations

import time

from repro.experiments.table1 import render_table1, run_table1
from repro.parallel import fork_available

from _perf import baseline_matches, check_regression, cpu_comparable, record_bench
from conftest import bench_jobs, bench_trials

#: A representative Table I slice: two SmartThings hubs, a Ring camera, a
#: Hue bridge, and the SimpliSafe keypad — mixed servers and timeout shapes.
LABELS = ["HS1", "HS2", "C2", "M7", "HS3", "P1"]


def _timed(jobs: int, trials: int):
    start = time.perf_counter()
    rows = run_table1(labels=LABELS, trials=trials, jobs=jobs)
    return rows, time.perf_counter() - start


def test_table1_parallel_campaign(once):
    trials = min(bench_trials(), 20)
    jobs = bench_jobs()

    serial_rows, serial_s = _timed(1, trials)
    parallel_rows, parallel_s = once(_timed, jobs, trials)

    # The whole point: sharding must not perturb a single measured value.
    assert render_table1(parallel_rows) == render_table1(serial_rows)

    speedup = serial_s / parallel_s if parallel_s else 0.0
    entry = record_bench(
        "table1_parallel",
        labels=LABELS,
        trials=trials,
        jobs=jobs,
        serial_seconds=round(serial_s, 3),
        parallel_seconds=round(parallel_s, 3),
        speedup=round(speedup, 3),
        fork_available=fork_available(),
    )
    print()
    print(render_table1(parallel_rows))
    print(f"serial {serial_s:.2f}s vs jobs={jobs} {parallel_s:.2f}s "
          f"({speedup:.2f}x) -> {entry}")
    # Wall clocks are hardware-bound, so the gate is generous — fail only
    # when the serial campaign takes 3x the committed baseline (the shape
    # of regression a telemetry-capture bug in the shard wrapper causes) —
    # and only comparing like workloads: REPRO_BENCH_TRIALS shrinks CI
    # runs below what the committed baseline measured.
    if baseline_matches("table1_parallel", trials=trials):
        check_regression("table1_parallel", "serial_seconds", serial_s,
                         tolerance=2.0, larger_is_better=False)
    # Speedup is hardware-bound: assert it only on a machine that can
    # physically parallelise AND whose core count matches the committed
    # baseline — a 1-core runner records speedup < 1 (fork overhead) and
    # must neither fail here nor gate future multi-core baselines.
    if cpu_comparable("table1_parallel") and baseline_matches(
        "table1_parallel", trials=trials, jobs=jobs
    ):
        check_regression("table1_parallel", "speedup", speedup)
