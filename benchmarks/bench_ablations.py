"""Bench: ablations of the attack-design choices (DESIGN.md section 5).

1. Forged ACKs — without them the sender retransmits visibly (and longer
   holds die of retransmission exhaustion): the stealth evaporates.
2. Release margin — 0 s rides the edge and loses trials; the paper's 2 s
   achieves 100% avoidance with negligible window cost.
3. Keep-alive pattern — fixed-period sessions have a phase-spread window
   (Hue: 120 s of spread), on-idle sessions a constant attacker-chosen one.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    render_ablations,
    run_forged_ack_ablation,
    run_margin_sweep,
    run_pattern_comparison,
)


def _run_all():
    return (
        run_forged_ack_ablation(),
        run_margin_sweep(),
        run_pattern_comparison(),
    )


def test_ablations(once):
    forge_rows, margin_rows, pattern_rows = once(_run_all)
    print()
    print(render_ablations(forge_rows, margin_rows, pattern_rows))

    with_forge = next(r for r in forge_rows if r.forge_acks)
    without = next(r for r in forge_rows if not r.forge_acks)
    assert with_forge.retransmissions == 0  # silent
    assert without.retransmissions >= 2    # the suspicious retransmit storm

    by_margin = {row.margin: row for row in margin_rows}
    assert by_margin[2.0].timeouts_avoided == by_margin[2.0].trials  # paper's margin
    assert by_margin[0.0].timeouts_avoided < by_margin[0.0].trials   # edge-riding fails
    assert by_margin[10.0].mean_achieved < by_margin[2.0].mean_achieved  # window cost

    spread = {row.label: row.spread for row in pattern_rows}
    assert spread["H2"] == 120.0 and spread["H1"] == 31.0
