"""Perf-trajectory recorder: merges results into ``BENCH_campaign.json``.

Every perf-sensitive bench records its headline numbers here so the
repository carries a machine-readable history of how fast the simulator
and the campaign runner are.  The file lives at the repo root (override
with ``REPRO_BENCH_OUT``) and CI uploads it as an artifact, so a perf
regression shows up as a diff, not as a vague feeling.

Records are merged by bench name — re-running one bench updates its entry
and leaves the others alone.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any

_DEFAULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_campaign.json")


def bench_out_path() -> str:
    return os.path.abspath(os.environ.get("REPRO_BENCH_OUT", _DEFAULT_PATH))


def record_bench(name: str, **fields: Any) -> dict[str, Any]:
    """Merge one bench's results into the campaign perf file."""
    path = bench_out_path()
    data: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    benches = data.setdefault("benchmarks", {})
    benches[name] = {
        **fields,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    data["updated_at"] = benches[name]["recorded_at"]
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return benches[name]
