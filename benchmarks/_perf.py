"""Perf-trajectory recorder and regression gate for ``BENCH_campaign.json``.

Every perf-sensitive bench records its headline numbers here so the
repository carries a machine-readable history of how fast the simulator
and the campaign runner are.  The file lives at the repo root (override
with ``REPRO_BENCH_OUT``) and CI uploads it as an artifact, so a perf
regression shows up as a diff, not as a vague feeling.

Records are merged by bench name — re-running one bench updates its entry
and leaves the others alone.  Each record is stamped with ``git_describe``
so a trajectory point is attributable to a commit.

:func:`check_regression` is the gate: it compares a freshly measured
number against the *committed* baseline (memoised before any
``record_bench`` overwrites the file) and fails the bench when the fresh
number regressed beyond tolerance.  Set ``REPRO_BENCH_GATE=0`` to record
without gating (e.g. on a deliberately slow machine).
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any

_DEFAULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_campaign.json")

#: Default relative regression tolerated before the gate fails (25%).
DEFAULT_TOLERANCE = 0.25

#: The committed baseline, memoised at first use so the gate always
#: compares against the numbers checked into git, not the ones a bench
#: recorded thirty seconds ago.
_BASELINE: dict[str, Any] | None = None


def bench_out_path() -> str:
    return os.path.abspath(os.environ.get("REPRO_BENCH_OUT", _DEFAULT_PATH))


def _git_describe() -> str:
    from repro.obs.manifest import git_describe

    return git_describe()


def load_baseline() -> dict[str, Any]:
    """The committed bench file's ``benchmarks`` mapping (memoised)."""
    global _BASELINE
    if _BASELINE is None:
        baseline: dict[str, Any] = {}
        try:
            with open(bench_out_path()) as fh:
                baseline = json.load(fh).get("benchmarks", {})
        except (OSError, ValueError):
            baseline = {}
        _BASELINE = baseline
    return _BASELINE


def baseline_value(name: str, field: str) -> float | None:
    """One committed number, or None when the baseline lacks it."""
    entry = load_baseline().get(name)
    if not isinstance(entry, dict):
        return None
    value = entry.get(field)
    return float(value) if isinstance(value, (int, float)) else None


def gate_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_GATE", "1") != "0"


def baseline_matches(name: str, **workload: Any) -> bool:
    """Whether the committed entry ran the same workload.

    Wall-clock fields are only comparable when the workload (trials,
    jobs, ...) matches what the baseline measured — ``REPRO_BENCH_TRIALS``
    on CI shrinks the work, and gating a 2-trial run against a 20-trial
    baseline is meaningless in either direction.
    """
    entry = load_baseline().get(name)
    if not isinstance(entry, dict):
        return False
    return all(entry.get(key) == value for key, value in workload.items())


def cpu_comparable(name: str) -> bool:
    """Whether parallel-speedup fields are gateable on this machine.

    Speedup is a property of the hardware as much as of the code: a
    1-core runner physically cannot beat serial (fork overhead pushes
    speedup below 1 — the committed ``table1_parallel`` entry records
    0.949 for exactly that reason), and a baseline recorded on a
    different core count measured a different quantity.  Speedup
    assertions therefore only run when this machine has more than one
    CPU *and* the committed entry was recorded on the same core count.
    """
    cores = os.cpu_count() or 1
    if cores <= 1:
        return False
    entry = load_baseline().get(name)
    return isinstance(entry, dict) and entry.get("cpu_count") == cores


def check_regression(
    name: str,
    field: str,
    fresh: float,
    tolerance: float = DEFAULT_TOLERANCE,
    larger_is_better: bool = True,
) -> None:
    """Fail (``AssertionError``) when ``fresh`` regressed past tolerance.

    A throughput field (``larger_is_better``) may drop at most
    ``tolerance`` below the committed baseline; a latency-style field may
    rise at most ``tolerance`` above it.  Missing baselines pass — the
    first recorded run *creates* the baseline.
    """
    baseline = baseline_value(name, field)
    if baseline is None or baseline == 0 or not gate_enabled():
        return
    if larger_is_better:
        floor = baseline * (1.0 - tolerance)
        assert fresh >= floor, (
            f"perf regression: {name}.{field} = {fresh:.1f} fell below "
            f"{floor:.1f} ({tolerance:.0%} under the committed baseline "
            f"{baseline:.1f}); investigate before re-recording "
            "BENCH_campaign.json (REPRO_BENCH_GATE=0 skips the gate)"
        )
    else:
        ceiling = baseline * (1.0 + tolerance)
        assert fresh <= ceiling, (
            f"perf regression: {name}.{field} = {fresh:.3f} rose above "
            f"{ceiling:.3f} ({tolerance:.0%} over the committed baseline "
            f"{baseline:.3f}); investigate before re-recording "
            "BENCH_campaign.json (REPRO_BENCH_GATE=0 skips the gate)"
        )


def record_bench(name: str, **fields: Any) -> dict[str, Any]:
    """Merge one bench's results into the campaign perf file."""
    load_baseline()  # pin the committed numbers before the first overwrite
    path = bench_out_path()
    data: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    benches = data.setdefault("benchmarks", {})
    benches[name] = {
        **fields,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "git_describe": _git_describe(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    data["updated_at"] = benches[name]["recorded_at"]
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return benches[name]
