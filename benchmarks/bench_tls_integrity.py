"""Bench E9: Clarification I — TLS catches tampering, not delay.

Five middle-box behaviours against the same session: pass-through and
hold/release stay silent with the event delivered; corrupt / inject / drop
all end loudly (TLS alerts or timeout alarms).
"""

from __future__ import annotations

from repro.experiments.tls_integrity import render_integrity, run_integrity_experiment


def test_tls_integrity_contrast(once):
    rows = once(run_integrity_experiment)
    print()
    print(render_integrity(rows))
    by_mode = {row.mode: row for row in rows}
    assert by_mode["pass-through"].silent and by_mode["pass-through"].event_delivered
    assert by_mode["hold-release"].silent and by_mode["hold-release"].event_delivered
    for mode in ("corrupt", "inject", "drop"):
        assert not by_mode[mode].silent, mode
    assert all(row.matches_paper for row in rows)
