"""Bench: observability overhead — disabled must be within noise, enabled
must stay cheap enough to leave on for a whole campaign.

The same observed e-Delay run as ``examples/observability_demo.py`` is
executed with observability off and on; both wall-clock times are printed
so regressions in the disabled hot path (one attribute load and a branch
per instrumentation site) are visible next to the enabled cost.
"""

from __future__ import annotations

import time

from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker
from repro.core.attacks import StateUpdateDelay
from repro.obs import attribute_delay, link_hold_spans
from repro.testbed import SmartHomeTestbed


def _edelay_run(observe: bool) -> SmartHomeTestbed:
    home = SmartHomeTestbed(seed=21, observe=observe)
    smoke = home.add_device("SM1")
    home.install_rule(parse_rule(
        'WHEN sm1 smoke.detected THEN NOTIFY push "SMOKE DETECTED"'
    ))
    home.settle()
    attacker = PhantomDelayAttacker.deploy(home)
    delay = StateUpdateDelay(attacker, smoke)
    home.run(70.0)
    delay.arm()
    smoke.stimulate("detected")
    home.run(120.0)
    return home

def test_observer_off_vs_on(once):
    t0 = time.perf_counter()
    plain = _edelay_run(observe=False)
    off_s = time.perf_counter() - t0

    observed = once(_edelay_run, observe=True)
    assert plain.sim.events_processed == observed.sim.events_processed

    obs = observed.obs
    assert obs.enabled and plain.obs.enabled is False
    link_hold_spans(obs.tracer.spans)
    message = next(
        s for s in obs.tracer.spans
        if s.component == "appproto" and s.name == "event:smoke.detected"
    )
    attribution = attribute_delay(obs.tracer.spans, message.attrs["msg_id"])
    assert attribution is not None
    assert attribution.components_sum == attribution.total

    print()
    print(f"observability off: {off_s * 1000:8.2f} ms "
          f"({plain.sim.events_processed} events, nothing recorded)")
    print(f"observability on : spans={len(obs.tracer.spans)} "
          f"metrics={len(obs.registry)} "
          f"events={observed.sim.events_processed}")
    print(attribution.render())
