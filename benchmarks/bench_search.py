"""Bench: the adversarial schedule search, generate-to-corpus.

Runs one search of ``REPRO_BENCH_PROGRAMS`` generated programs (default
48) serially and across a worker pool, asserts the corpus digests are
byte-identical (the search determinism contract), and records
candidates/sec into ``BENCH_campaign.json`` under the regression gate.
Candidates/sec is the number that bounds how much of the rule-set space
one campaign can cover: every candidate is a full baseline-vs-attacked
program run plus its share of shrink verifications.
"""

from __future__ import annotations

import os
import time

from repro.parallel import fork_available
from repro.search import run_search

from _perf import baseline_matches, check_regression, cpu_comparable, record_bench
from conftest import bench_jobs


def bench_programs(default: int = 48) -> int:
    return int(os.environ.get("REPRO_BENCH_PROGRAMS", default))


def _run(programs: int, jobs: int):
    start = time.perf_counter()
    report = run_search(programs, seed=0, jobs=jobs, cache=False,
                        manifest=False)
    wall = time.perf_counter() - start
    return report, wall


def test_search_campaign(once):
    programs = bench_programs()
    jobs = bench_jobs()

    serial_report, serial_s = _run(programs, 1)
    parallel_report, parallel_s = once(_run, programs, jobs)

    # The determinism contract: worker count must not move a single case.
    assert parallel_report.corpus_digest == serial_report.corpus_digest
    assert parallel_report.programs == programs

    # Throughput counts candidate schedules, each one a full paired run;
    # shrink verifications ride inside the same wall time.
    explored = parallel_report.explored
    candidates_per_sec = explored / parallel_s if parallel_s else 0.0
    entry = record_bench(
        "search",
        programs=programs,
        jobs=jobs,
        serial_seconds=round(serial_s, 3),
        parallel_seconds=round(parallel_s, 3),
        candidates=explored,
        candidates_per_sec=round(candidates_per_sec, 1),
        serial_candidates_per_sec=round(
            explored / serial_s if serial_s else 0.0, 1),
        hits=len(parallel_report.hits),
        programs_per_sec=round(programs / parallel_s if parallel_s else 0.0, 1),
        fork_available=fork_available(),
    )
    print()
    print(f"search: {programs} programs, {explored} candidates, "
          f"{len(parallel_report.hits)} verified hits")
    print(f"serial {serial_s:.2f}s vs jobs={jobs} {parallel_s:.2f}s; "
          f"{candidates_per_sec:.1f} candidates/s -> {entry}")
    # Same gating policy as the fleet bench: serial gates the per-program
    # fixed cost on any machine with a matching workload; the parallel
    # number additionally needs a comparable CPU and matching jobs.
    if baseline_matches("search", programs=programs):
        check_regression("search", "serial_candidates_per_sec",
                         explored / serial_s if serial_s else 0.0)
    if cpu_comparable("search") and baseline_matches("search",
                                                     programs=programs,
                                                     jobs=jobs):
        check_regression("search", "candidates_per_sec", candidates_per_sec)
