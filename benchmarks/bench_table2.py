"""Bench E2: regenerate Table II — HomeKit-paired devices.

HAP event messages carry no acknowledgement, so the profiler never observes
a timeout: every row must come out '∞' (the paper: "the HomeKit Accessory
Protocol allows event messages to be delayed with an infinite upper bound").
"""

from __future__ import annotations

from repro.experiments.table2 import render_table2, run_table2

from conftest import bench_trials


def test_table2_full_campaign(once):
    rows = once(run_table2, trials=min(bench_trials(), 5))
    print()
    print(render_table2(rows))
    assert len(rows) == 14
    assert all(row.event_unbounded for row in rows), [
        r.profile.label for r in rows if not r.event_unbounded
    ]
