"""Idle smart-home day: the quiescent fast path on an all-periodic fleet.

The paper's victim population is a smart home that spends most of a day
*idle*: every device just heartbeats — MQTT keep-alives, TCP keep-alive
probes, periodic sensor reports — and nothing else happens.  This bench
simulates 24 hours of that steady state for a 20-device fleet (60 periodic
timers, ≈90k events) through three engine configurations:

* ``events_per_sec`` (headline): the timer wheel with quiescence skipping
  enabled — all-periodic detection lets :meth:`Simulator.run_until`
  batch-step the whole day through the dedicated re-arm loop;
* ``general_events_per_sec``: the same wheel with quiescence blocked
  (:meth:`Simulator.block_quiescence`), i.e. the general bucket-scan path;
* ``legacy_events_per_sec``: the seed's ``_Entry``-dataclass engine, which
  allocates a fresh ``Timer`` + heap entry + f-string label per fire.

All three fire the identical logical event stream (asserted), so the
ratios are pure engine overhead.  Honest numbers: on the reference box the
wheel clears the seed engine by ≈4x on this pure-periodic mix (the seed
loop's worst case — one-shot churn with cancellations — is where the
wheel's win exceeds 10x; see ``scheduler_microbench``), and quiescence
skipping adds ≈10-15% over the general wheel path.  The inline gate is a
conservative 3x floor on ``speedup_vs_legacy``; absolute rates are gated
against the committed baseline by :func:`check_regression`.

``REPRO_BENCH_IDLE_SECONDS`` shrinks the simulated day for smoke runs.
"""

from __future__ import annotations

import os
import time

from repro.simnet.scheduler import Simulator

from _perf import check_regression, record_bench
from bench_scheduler import _LegacySimulator

#: Simulated horizon (one day of idle steady state by default).
DAY = float(os.environ.get("REPRO_BENCH_IDLE_SECONDS", 86_400))

N_DEVICES = 20

#: Per-device heartbeat periods, staggered so fires interleave instead of
#: phase-locking: an MQTT keep-alive, a TCP keep-alive probe cycle, and a
#: periodic sensor report — the Table I idle traffic mix.
def _device_periods(i: int) -> tuple[float, float, float]:
    return (29.0 + 0.25 * i, 45.0 + 1.5 * i, 300.0 + float(i))


def _noop() -> None:
    pass


def _drive_wheel(quiescent: bool) -> tuple[int, float]:
    """One simulated day on the wheel; returns (events, wall seconds)."""
    sim = Simulator()
    if not quiescent:
        sim.block_quiescence()
    for i in range(N_DEVICES):
        mqtt, tcpka, sensor = _device_periods(i)
        sim.schedule_periodic(mqtt, _noop, label=f"dev{i}:mqtt-ka")
        sim.schedule_periodic(tcpka, _noop, label=f"dev{i}:tcp-ka")
        sim.schedule_periodic(sensor, _noop, label=f"dev{i}:sensor")
    start = time.perf_counter()
    sim.run_until(DAY)
    return sim._events_processed, time.perf_counter() - start


def _drive_legacy() -> tuple[int, float]:
    """The same day on the seed engine: self-rescheduling one-shot timers,
    a fresh Timer object and a freshly formatted label per fire — exactly
    how the seed's protocol layers armed their keep-alives."""
    sim = _LegacySimulator()

    def arm(i: int, kind: str, period: float) -> None:
        def fire() -> None:
            sim.schedule(period, fire, label=f"dev{i}:{kind}")

        sim.schedule(period, fire, label=f"dev{i}:{kind}")

    for i in range(N_DEVICES):
        mqtt, tcpka, sensor = _device_periods(i)
        arm(i, "mqtt-ka", mqtt)
        arm(i, "tcp-ka", tcpka)
        arm(i, "sensor", sensor)
    start = time.perf_counter()
    sim.run_until(DAY)
    return sim._events_processed, time.perf_counter() - start


def _best(drive, rounds: int = 3) -> tuple[int, float, float]:
    """Best-of-N: (events, best events/sec, best wall seconds)."""
    events, best_rate, best_wall = 0, 0.0, float("inf")
    for _ in range(rounds):
        events, elapsed = drive()
        best_rate = max(best_rate, events / elapsed)
        best_wall = min(best_wall, elapsed)
    return events, best_rate, best_wall


def test_idle_home_day():
    q_events, quiescent, q_wall = _best(lambda: _drive_wheel(True))
    g_events, general, _ = _best(lambda: _drive_wheel(False))
    l_events, legacy, l_wall = _best(_drive_legacy)
    assert q_events == g_events == l_events, (
        "all engine configurations must fire the identical heartbeat stream"
    )

    speedup = quiescent / legacy
    quiescence_gain = quiescent / general - 1.0
    entry = record_bench(
        "idle_home_bench",
        devices=N_DEVICES,
        timers=N_DEVICES * 3,
        day_seconds=DAY,
        events=q_events,
        events_per_sec=round(quiescent),
        general_events_per_sec=round(general),
        legacy_events_per_sec=round(legacy),
        speedup_vs_legacy=round(speedup, 3),
        quiescence_gain_pct=round(quiescence_gain * 100, 2),
        day_wall_ms=round(q_wall * 1e3, 2),
        legacy_day_wall_ms=round(l_wall * 1e3, 2),
    )
    print()
    print(
        f"idle home day: {q_events} events in {q_wall * 1e3:.1f} ms "
        f"({quiescent / 1e6:.3f} M events/s; general wheel "
        f"{general / 1e6:.3f} M, legacy {legacy / 1e6:.3f} M, "
        f"{speedup:.2f}x; quiescence gain {quiescence_gain:+.1%}) -> {entry}"
    )
    # Conservative inline floor: the wheel must hold at least 3x over the
    # seed engine on the pure-periodic day (its most favourable workload —
    # no cancellations to double-scan).  Measured headroom is ≈4x.
    assert speedup >= 3.0, (
        f"idle-home speedup vs the seed engine fell to {speedup:.2f}x"
    )
    # Quiescence skipping must never lose to the general path.
    assert quiescent >= general * 0.95, (
        f"quiescent path slower than general path ({quiescence_gain:+.1%})"
    )
    check_regression("idle_home_bench", "events_per_sec", quiescent)
    check_regression("idle_home_bench", "speedup_vs_legacy", speedup,
                     tolerance=0.45)
