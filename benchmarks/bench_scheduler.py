"""Scheduler micro-benchmark: raw events/second through the hot loop.

The discrete-event scheduler executes every packet, timer, and attacker
hold of the reproduction, so its per-event overhead multiplies into every
campaign's wall clock.  This bench measures two workloads:

* the **headline** (``events_per_sec``): pure periodic keep-alives via
  :meth:`~repro.simnet.Simulator.schedule_periodic` — the dominant event
  mix of an idle IoT fleet, served by the timer wheel's quiescent fast
  path (re-arm via ``heapreplace``, zero Timer allocation per fire);
* the **one-shot chain** (``oneshot_events_per_sec``): self-rescheduling
  timer chains plus a cancelled decoy per fire (defensive ``cancel()``
  calls from protocol state machines), driven through both the current
  :class:`repro.simnet.Simulator` and ``_LegacySimulator`` — a faithful
  clone of the seed's ``_Entry``-dataclass loop (rich-comparison heap
  nodes, ``peek()``/``step()`` double scan).

Rates and speedups land in ``BENCH_campaign.json`` so the perf trajectory
of the hot loop is tracked release over release.  The first run after the
periodic fast path landed must clear 5x the committed pre-wheel baseline.

``REPRO_BENCH_EVENTS`` scales the workload (default ≈290k events).
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from dataclasses import dataclass, field

from repro.obs import telemetry
from repro.simnet.clock import Clock
from repro.simnet.scheduler import Simulator, Timer

from _perf import check_regression, record_bench


@dataclass(order=True)
class _Entry:
    when: float
    seq: int
    timer: "Timer" = field(compare=False)


class _LegacySimulator:
    """The seed scheduler's hot loop, kept verbatim as the perf baseline."""

    def __init__(self) -> None:
        self.clock = Clock()
        self._queue: list[_Entry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._observer = None

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay, callback, *args, label=""):
        return self.at(self.now + delay, callback, *args, label=label)

    def at(self, when, callback, *args, label=""):
        timer = Timer(when, callback, args, label=label, created_at=self.now)
        heapq.heappush(self._queue, _Entry(when, next(self._seq), timer))
        return timer

    def peek(self):
        while self._queue and not self._queue[0].timer.active:
            heapq.heappop(self._queue)
        return self._queue[0].when if self._queue else None

    def step(self):
        while self._queue:
            entry = heapq.heappop(self._queue)
            timer = entry.timer
            if not timer.active:
                continue
            self.clock.advance_to(entry.when)
            timer._fired = True
            self._events_processed += 1
            if self._observer is not None:
                self._observer.timer_fired(timer, self.clock.now, len(self._queue))
            timer.callback(*timer.args)
            return True
        return False

    def run_until(self, deadline):
        while True:
            nxt = self.peek()
            if nxt is None or nxt > deadline:
                break
            self.step()
        self.clock.advance_to(max(self.clock.now, deadline))


N_CHAINS = 32
#: Simulated horizon sized so the default workload is ≈290k events.
HORIZON = float(os.environ.get("REPRO_BENCH_EVENTS", 290_000)) / 36.1


def _drive(sim) -> tuple[int, float]:
    """Run the chain workload; returns (events fired, wall seconds)."""

    def fire(i: int, period: float) -> None:
        decoy = sim.schedule(period * 3, _noop, label="decoy")
        decoy.cancel()
        sim.schedule(period, fire, i, period, label=f"chain{i}")

    for i in range(N_CHAINS):
        fire(i, 0.7 + 0.013 * i)
    start = time.perf_counter()
    sim.run_until(HORIZON)
    return sim._events_processed, time.perf_counter() - start


def _drive_periodic(sim: Simulator) -> tuple[int, float]:
    """Run the keep-alive workload; returns (events fired, wall seconds).

    Every timer is armed with :meth:`Simulator.schedule_periodic`, so once
    the run starts the event mix is all-periodic and the scheduler's
    quiescent fast path batch-steps the whole horizon.
    """
    for i in range(N_CHAINS):
        sim.schedule_periodic(0.7 + 0.013 * i, _noop, label=f"ka{i}")
    start = time.perf_counter()
    sim.run_until(HORIZON)
    return sim._events_processed, time.perf_counter() - start


def _noop() -> None:
    pass


def _best_rate(make_sim, drive=_drive, rounds: int = 3) -> tuple[int, float]:
    """Best-of-N events/second (best-of absorbs scheduler jitter)."""
    events, best = 0, 0.0
    for _ in range(rounds):
        events, elapsed = drive(make_sim())
        best = max(best, events / elapsed)
    return events, best


def test_scheduler_events_per_second():
    from _perf import baseline_value, load_baseline

    legacy_events, legacy = _best_rate(_LegacySimulator)
    periodic_events, periodic = _best_rate(Simulator, drive=_drive_periodic)
    # Plain and captured runs interleave round by round so clock drift on a
    # busy machine biases both the same way; the captured run keeps a
    # telemetry capture active for the whole workload (construction + hot
    # loop), exactly as a campaign shard wrapper runs it.
    events = captured_events = 0
    current = captured = 0.0
    for _ in range(3):
        events, elapsed = _drive(Simulator())
        current = max(current, events / elapsed)
        with telemetry.capture():
            captured_events, elapsed = _drive(Simulator())
        captured = max(captured, captured_events / elapsed)
    assert events == legacy_events == captured_events, (
        "all loops must fire the identical workload"
    )
    speedup = current / legacy
    overhead = 1.0 - captured / current
    # One-time acceptance gate for the timer-wheel PR: against the last
    # committed pre-wheel baseline (its entry predates the periodic
    # headline, so it lacks the oneshot_events_per_sec field) the periodic
    # fast path must clear 5x.  Once a post-wheel baseline is committed
    # the ordinary check_regression gates below take over.
    committed = load_baseline().get("scheduler_microbench") or {}
    pre_wheel = baseline_value("scheduler_microbench", "events_per_sec")
    if pre_wheel and "oneshot_events_per_sec" not in committed:
        assert periodic >= 5.0 * pre_wheel, (
            f"periodic fast path {periodic:,.0f} ev/s misses 5x the "
            f"pre-wheel baseline ({pre_wheel:,.0f} ev/s)"
        )
    entry = record_bench(
        "scheduler_microbench",
        events=periodic_events,
        events_per_sec=round(periodic),
        oneshot_events=events,
        oneshot_events_per_sec=round(current),
        events_per_sec_captured=round(captured),
        legacy_events_per_sec=round(legacy),
        speedup_vs_entry_dataclass=round(speedup, 3),
        telemetry_overhead_pct=round(overhead * 100, 2),
    )
    print()
    print(
        f"scheduler: periodic {periodic / 1e6:.3f} M events/s, "
        f"one-shot {current / 1e6:.3f} M events/s "
        f"(legacy {legacy / 1e6:.3f} M events/s, {speedup:.2f}x; "
        f"telemetry capture overhead {overhead:+.1%}) -> {entry}"
    )
    # Telemetry capture registers at construction time only — the
    # acceptance bar is <5% on the hot loop.
    assert captured >= current * 0.95, (
        f"telemetry capture costs {overhead:.1%} of scheduler throughput"
    )
    # The regression gates replace the old inline speedup assert: the
    # absolute rates must stay within 25% of the committed baseline.  The
    # speedup ratio compounds the noise of two measurements, so its
    # tolerance is set to put the floor where the old inline assert was
    # (2.08x committed * 0.55 ≈ 1.15x).
    check_regression("scheduler_microbench", "events_per_sec", periodic)
    check_regression("scheduler_microbench", "oneshot_events_per_sec", current)
    check_regression("scheduler_microbench", "events_per_sec_captured", captured)
    check_regression("scheduler_microbench", "speedup_vs_entry_dataclass", speedup,
                     tolerance=0.45)


def test_scheduler_loop_equivalence():
    """Optimised and legacy loops agree on order, count, and final clock."""
    order_current: list[str] = []
    order_legacy: list[str] = []

    def run(sim, order):
        for i, period in ((0, 1.0), (1, 1.0), (2, 0.5)):
            def fire(i=i, period=period):
                order.append(f"{i}@{sim.now:.1f}")
                if sim.now + period <= 10.0:
                    sim.schedule(period, fire, label=f"c{i}")
            sim.schedule(period, fire, label=f"c{i}")
        cancelled = sim.schedule(0.25, lambda: order.append("never"), label="dead")
        cancelled.cancel()
        sim.run_until(10.0)
        return sim._events_processed, sim.now

    n_cur, now_cur = run(Simulator(), order_current)
    n_leg, now_leg = run(_LegacySimulator(), order_legacy)
    assert order_current == order_legacy
    assert n_cur == n_leg
    assert now_cur == now_leg == 10.0
