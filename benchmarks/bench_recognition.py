"""Bench (extension): device-recognition accuracy of the sniffing step.

Clarification II: profiling popular models lets the attacker recognise a
large share of deployments from encrypted metadata alone.  Five mixed homes,
passive sniffing only — expect 100% top-1 accuracy against the catalogue
signature database.
"""

from __future__ import annotations

from repro.experiments.recognition import render_recognition, run_recognition


def test_recognition_accuracy(once):
    report = once(run_recognition)
    print()
    print(render_recognition(report))
    assert report.accuracy == 1.0, [
        (r.device_id, r.recognised_label) for r in report.rows if not r.correct
    ]
