"""Bench E5: the Section VI-C verification test.

Random trigger phases, maximum-safe delays released margin-early: the paper
reports 100% timeout avoidance with every delayed message accepted.
"""

from __future__ import annotations

from repro.experiments.verification import render_verification, run_verification

from conftest import bench_trials


def test_verification_hundred_percent(once):
    rows = once(run_verification, trials=min(bench_trials(), 10))
    print()
    print(render_verification(rows))
    for row in rows:
        assert row.avoidance_rate == 1.0, (row.label, row.trials)
        assert row.success_rate == 1.0, (row.label, row.trials)
