"""Benchmark harness configuration.

Every bench regenerates one of the paper's artefacts end-to-end, so each
is run exactly once (``pedantic(rounds=1, iterations=1)``) — the interesting
output is the reproduced table, printed to stdout, not the timing
distribution.

Environment knobs (all optional):

``REPRO_BENCH_TRIALS``
    Measurement trials per message type.  Defaults to the paper's 20; the
    simulation is deterministic, so lower counts measure the same values
    faster.  CI's smoke job runs with ``REPRO_BENCH_TRIALS=2``.
``REPRO_BENCH_JOBS``
    Worker-process count for the parallel campaign benches.  Defaults to
    the machine's CPU count (capped by ``repro.parallel.JOBS_CAP``).
``REPRO_BENCH_OUT``
    Where ``benchmarks/_perf.record_bench`` writes the perf-trajectory
    file (default: ``BENCH_campaign.json`` at the repo root).
``REPRO_BENCH_EVENTS``
    Workload size for the scheduler micro-benchmark.
"""

from __future__ import annotations

import os

import pytest


def bench_trials(default: int = 20) -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


def bench_jobs(default: int | None = None) -> int:
    """Worker count for parallel benches (``REPRO_BENCH_JOBS`` wins)."""
    from repro.parallel import resolve_jobs

    env = os.environ.get("REPRO_BENCH_JOBS")
    if env is not None:
        return resolve_jobs(int(env))
    return resolve_jobs(default)


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
