"""Benchmark harness configuration.

Every bench regenerates one of the paper's artefacts end-to-end, so each
is run exactly once (``pedantic(rounds=1, iterations=1)``) — the interesting
output is the reproduced table, printed to stdout, not the timing
distribution.  Trial counts follow the paper's 20 unless overridden with
``REPRO_BENCH_TRIALS`` (the simulation is deterministic, so lower counts
measure the same values faster).
"""

from __future__ import annotations

import os

import pytest


def bench_trials(default: int = 20) -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
